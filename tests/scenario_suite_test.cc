// Measurement-study acceptance suite: named end-to-end scenarios modeled on
// the axes conferencing measurement studies actually report (bitrate vs
// party count, outage recovery time, asymmetric access, membership churn,
// competition with bulk transport flows), each pinned to an explicit
// numeric envelope. EXPERIMENTS.md ("Scenario acceptance suite") documents
// every envelope; regenerate the numbers there when a PR intentionally
// moves one.
//
// Every scenario runs under the invariant registry and must be
// byte-deterministic: the suite re-runs the whole scenario set serially,
// with 8 workers, and a second time, and byte-compares the stats JSON.
//
// When CONVERGE_SCENARIO_REPORT is set, every envelope check appends a
// "scenario metric value lo hi PASS|FAIL" line to that file (CI uploads it
// as an artifact).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "net/cross_traffic.h"
#include "net/fault_plan.h"
#include "net/loss_model.h"
#include "rtp/ssrc_allocator.h"
#include "session/conference.h"
#include "session/stats_json.h"
#include "util/invariants.h"

namespace converge {
namespace {

PathSpec StablePath(const std::string& name, double mbps, int delay_ms,
                    double loss = 0.0) {
  PathSpec spec;
  spec.name = name;
  spec.capacity = BandwidthTrace::Constant(DataRate::MegabitsPerSec(mbps));
  spec.prop_delay = Duration::Millis(delay_ms);
  if (loss > 0.0) spec.loss = std::make_shared<BernoulliLoss>(loss);
  return spec;
}

Timestamp At(double seconds) {
  return Timestamp::Zero() + Duration::Seconds(seconds);
}

// Appends one envelope-check row to $CONVERGE_SCENARIO_REPORT (truncated on
// the first write of the process) and asserts the value is inside [lo, hi].
void CheckEnvelope(const char* scenario, const char* metric, double value,
                   double lo, double hi) {
  const bool pass = value >= lo && value <= hi;
  EXPECT_TRUE(pass) << scenario << "." << metric << " = " << value
                    << " outside pinned envelope [" << lo << ", " << hi
                    << "]";
  if (const char* path = std::getenv("CONVERGE_SCENARIO_REPORT")) {
    static bool truncated = false;
    std::ofstream out(path, truncated ? std::ios::app : std::ios::trunc);
    truncated = true;
    out << scenario << ' ' << metric << ' ' << value << ' ' << lo << ' '
        << hi << ' ' << (pass ? "PASS" : "FAIL") << '\n';
  }
}

// ---------------------------------------------------------------------------
// Scenario configurations. Every config is a pure function of its arguments
// so the determinism sweep can rebuild identical ones.
// ---------------------------------------------------------------------------

// Scenario 1 — bitrate vs party count: a star whose per-receiver downlink
// budget is FIXED (5 Mbps across both paths) while the number of duplex
// parties grows, so the hub must split the same downlink among N-1
// publishers. The measurement-study claim: per-sender received bitrate
// falls roughly as 1/(N-1).
ConferenceConfig LadderConfig(int participants, uint64_t seed) {
  ConferenceConfig config;
  config.variant = Variant::kConverge;
  config.topology = Topology::kStar;
  config.participants.assign(static_cast<size_t>(participants),
                             ParticipantSpec{});
  config.max_rate_per_stream = DataRate::MegabitsPerSec(4);
  config.duration = Duration::Seconds(10);
  config.seed = seed;
  config.paths_for_edge = [](int from, int) {
    if (from == kHubId) {
      return std::vector<PathSpec>{StablePath("d0", 3.0, 15),
                                   StablePath("d1", 2.0, 25)};
    }
    return std::vector<PathSpec>{StablePath("u0", 6.0, 20),
                                 StablePath("u1", 4.0, 35)};
  };
  return config;
}

// Scenario 2 — outage recovery: a duplex 2-party multipath call whose
// primary path blacks out for [10 s, 12 s), well after the controller has
// converged. The envelope pins how fast the per-second receive rate climbs
// back to half its pre-outage mean once the path returns.
ConferenceConfig OutageRecoveryConfig(uint64_t seed) {
  ConferenceConfig config;
  config.variant = Variant::kConverge;
  config.topology = Topology::kMesh;
  config.participants.assign(2, ParticipantSpec{});
  PathSpec p0 = StablePath("o0", 6.0, 20);
  p0.fault_plan.Add(FaultEvent::Outage(At(10.0), Duration::Seconds(2)));
  config.paths = {p0, StablePath("o1", 4.0, 35)};
  config.max_rate_per_stream = DataRate::MegabitsPerSec(6);
  config.duration = Duration::Seconds(18);
  config.seed = seed;
  return config;
}

// Scenario 3 — asymmetric access: a 3-party star where participant 2's
// uplink pair is an order of magnitude thinner than its peers' (ADSL-style
// asymmetry: wide downlink, thin uplink). Peers must still receive p2's
// video at the uplink's rate while p2 receives full-rate video from both.
ConferenceConfig AsymmetricAccessConfig(uint64_t seed) {
  ConferenceConfig config;
  config.variant = Variant::kConverge;
  config.topology = Topology::kStar;
  config.participants.assign(3, ParticipantSpec{});
  config.max_rate_per_stream = DataRate::MegabitsPerSec(4);
  config.duration = Duration::Seconds(10);
  config.seed = seed;
  config.paths_for_edge = [](int from, int) {
    if (from == kHubId) {
      return std::vector<PathSpec>{StablePath("d0", 8.0, 15),
                                   StablePath("d1", 6.0, 25)};
    }
    if (from == 2) {
      return std::vector<PathSpec>{StablePath("thin0", 0.9, 25),
                                   StablePath("thin1", 0.6, 45)};
    }
    return std::vector<PathSpec>{StablePath("u0", 6.0, 20),
                                 StablePath("u1", 4.0, 35)};
  };
  return config;
}

// Scenario 4 — churn storm: a 4-party mesh with a late joiner, a mid-call
// leave + rejoin, and a final leave, all in one 20 s call. The envelope is
// structural (leg windows, incarnations, invariant cleanliness) plus QoE
// floors on every leg that lived at least 3 s.
ConferenceConfig ChurnStormConfig(uint64_t seed) {
  ConferenceConfig config;
  config.variant = Variant::kConverge;
  config.topology = Topology::kMesh;
  config.participants.assign(4, ParticipantSpec{});
  config.paths = {StablePath("c0", 6.0, 20, 0.01),
                  StablePath("c1", 4.0, 35, 0.005)};
  config.max_rate_per_stream = DataRate::MegabitsPerSec(3);
  config.duration = Duration::Seconds(20);
  config.seed = seed;
  config.membership = {
      {MembershipEvent::Kind::kJoin, At(3.0), 3},   // late joiner
      {MembershipEvent::Kind::kLeave, At(8.0), 1},  // leave...
      {MembershipEvent::Kind::kJoin, At(12.0), 1},  // ...and rejoin
      {MembershipEvent::Kind::kLeave, At(16.0), 2},
  };
  return config;
}

// Scenario 5 — competing cross-traffic: a duplex 2-party call whose primary
// path (6 Mbps) is shared with a greedy TCP-like flow from t = 2 s, next to
// a clean 3 Mbps secondary. The call must keep a nonzero stable share and
// the flow's throughput must land in the stats JSON.
ConferenceConfig CrossTrafficShareConfig(uint64_t seed) {
  ConferenceConfig config;
  config.variant = Variant::kConverge;
  config.topology = Topology::kMesh;
  config.participants.assign(2, ParticipantSpec{});
  PathSpec p0 = StablePath("x0", 6.0, 20);
  CrossTrafficSpec bulk;
  bulk.name = "bulk";
  bulk.kind = CrossTrafficKind::kTcp;
  bulk.start = At(2.0);
  p0.cross_traffic = {bulk};
  config.paths = {p0, StablePath("x1", 3.0, 35)};
  config.max_rate_per_stream = DataRate::MegabitsPerSec(6);
  config.duration = Duration::Seconds(20);
  config.seed = seed;
  return config;
}

// Scenario 6 — hub failover at fleet scale: a cascaded 3-hub fabric serving
// 105 participants (3 send-only publishers, one homed per hub, plus 102
// receive-only viewers split 34/34/34) whose hub 2 is killed at t = 6 s.
// Its 35 home participants re-home onto the next alive hub under fresh SSRC
// incarnations; the envelope pins how fast the re-homed viewers' aggregate
// receive rate climbs back to half its pre-fault mean — the ISSUE
// acceptance bound is 10 s, the observed recovery is the next whole second.
ConferenceConfig HubFailoverConfig(uint64_t seed) {
  ConferenceConfig config;
  config.variant = Variant::kConverge;
  config.topology = Topology::kStar;
  config.participants.assign(105, ParticipantSpec{});
  for (int p = 0; p < 3; ++p) config.participants[p].receives = false;
  for (int p = 3; p < 105; ++p) config.participants[p].sends = false;
  config.max_rate_per_stream = DataRate::MegabitsPerSec(1.5);
  config.duration = Duration::Seconds(16);
  config.seed = seed;
  config.paths_for_edge = [](int from, int) {
    if (from == kHubId) {
      return std::vector<PathSpec>{StablePath("d0", 6.0, 15),
                                   StablePath("d1", 4.0, 25)};
    }
    return std::vector<PathSpec>{StablePath("u0", 6.0, 20),
                                 StablePath("u1", 4.0, 35)};
  };
  config.num_hubs = 3;
  config.home_hub.resize(105);
  for (int p = 0; p < 3; ++p) config.home_hub[static_cast<size_t>(p)] = p;
  for (int p = 3; p < 105; ++p) {
    config.home_hub[static_cast<size_t>(p)] = (p - 3) % 3;
  }
  config.trunk_paths = {StablePath("t0", 12.0, 10),
                        StablePath("t1", 8.0, 20)};
  config.hub_fault_plans.resize(3);
  config.hub_fault_plans[2].Add(
      FaultEvent::Outage(At(6.0), Duration::Seconds(3)));
  return config;
}

struct Scenario {
  std::string name;
  std::vector<ConferenceConfig> configs;
};

// The registry the determinism sweep iterates. Names are stable
// identifiers; EXPERIMENTS.md documents each envelope under the same name.
std::vector<Scenario> AllScenarios() {
  std::vector<Scenario> all;
  all.push_back({"bitrate-vs-parties",
                 {LadderConfig(2, 11), LadderConfig(3, 11),
                  LadderConfig(4, 11)}});
  all.push_back({"outage-recovery", {OutageRecoveryConfig(23)}});
  all.push_back({"asymmetric-access", {AsymmetricAccessConfig(31)}});
  all.push_back({"churn-storm", {ChurnStormConfig(47)}});
  all.push_back({"cross-traffic-share", {CrossTrafficShareConfig(59)}});
  all.push_back({"hub-failover", {HubFailoverConfig(67)}});
  return all;
}

double SumInboundTput(const ConferenceStats& stats, int receiver) {
  double total = 0.0;
  for (const ConferenceStats::ParticipantQoe& p : stats.participants) {
    if (p.participant == receiver) total = p.total_tput_mbps;
  }
  return total;
}

// ---------------------------------------------------------------------------
// Envelope checks, one test per scenario.
// ---------------------------------------------------------------------------

TEST(ScenarioSuiteTest, BitrateVsPartiesLadder) {
  ScopedInvariants invariants;
  // Mean per-leg receive rate for each N on the fixed 5 Mbps downlink.
  std::vector<double> per_leg;
  for (int n : {2, 3, 4}) {
    Conference conference(LadderConfig(n, 11));
    const ConferenceStats stats = conference.Run();
    double tput = 0.0;
    for (const ConferenceStats::Leg& leg : stats.legs) {
      tput += leg.stats.TotalTputMbps();
    }
    per_leg.push_back(tput / static_cast<double>(stats.legs.size()));
  }
  // The ladder must strictly decrease: the same downlink budget split among
  // more publishers leaves less per publisher.
  EXPECT_GT(per_leg[0], per_leg[1]);
  EXPECT_GT(per_leg[1], per_leg[2]);
  CheckEnvelope("bitrate-vs-parties", "per_leg_mbps_n2", per_leg[0], 1.3,
                2.6);
  CheckEnvelope("bitrate-vs-parties", "per_leg_mbps_n3", per_leg[1], 0.85,
                1.8);
  CheckEnvelope("bitrate-vs-parties", "per_leg_mbps_n4", per_leg[2], 0.55,
                1.3);
  EXPECT_EQ(InvariantRegistry::violation_count(), 0);
}

TEST(ScenarioSuiteTest, OutageRecoveryTiming) {
  ScopedInvariants invariants;
  Conference conference(OutageRecoveryConfig(23));
  const ConferenceStats stats = conference.Run();
  ASSERT_EQ(stats.legs.size(), 2u);

  for (const ConferenceStats::Leg& leg : stats.legs) {
    const std::vector<SecondSample>& series = leg.stats.time_series;
    double pre = 0.0;
    int pre_n = 0;
    for (const SecondSample& s : series) {
      if (s.t_s >= 6.0 && s.t_s < 10.0) {
        pre += s.tput_mbps;
        ++pre_n;
      }
    }
    ASSERT_GT(pre_n, 0);
    pre /= pre_n;

    // Multipath survives the outage on the secondary: the per-second rate
    // never reaches zero.
    double outage_min = pre;
    for (const SecondSample& s : series) {
      if (s.t_s >= 10.5 && s.t_s < 12.0) {
        outage_min = std::min(outage_min, s.tput_mbps);
      }
    }
    // Recovery: first whole second after the outage clears where the rate
    // is back to >= 50% of the pre-outage mean.
    double recovered_at = -1.0;
    for (const SecondSample& s : series) {
      if (s.t_s >= 12.0 && s.tput_mbps >= 0.5 * pre) {
        recovered_at = s.t_s;
        break;
      }
    }
    ASSERT_GE(recovered_at, 0.0) << "never recovered to 50% of " << pre;
    CheckEnvelope("outage-recovery", "pre_outage_mbps", pre, 1.0, 5.5);
    CheckEnvelope("outage-recovery", "outage_floor_mbps", outage_min, 0.05,
                  5.5);
    CheckEnvelope("outage-recovery", "recovery_s", recovered_at - 12.0, 0.0,
                  2.0);
  }
  EXPECT_EQ(InvariantRegistry::violation_count(), 0);
}

TEST(ScenarioSuiteTest, AsymmetricAccessUplinkLimited) {
  ScopedInvariants invariants;
  Conference conference(AsymmetricAccessConfig(31));
  const ConferenceStats stats = conference.Run();

  // Legs published by the thin participant are pinned near its 1.5 Mbps
  // uplink pair; everyone else's legs run at full rate; the thin
  // participant still RECEIVES full-rate video.
  double thin_out = 0.0, wide_out = 0.0;
  int thin_n = 0, wide_n = 0;
  for (const ConferenceStats::Leg& leg : stats.legs) {
    const double tput = leg.stats.TotalTputMbps();
    if (leg.from == 2) {
      thin_out += tput;
      ++thin_n;
    } else {
      wide_out += tput;
      ++wide_n;
    }
  }
  thin_out /= thin_n;
  wide_out /= wide_n;
  CheckEnvelope("asymmetric-access", "thin_leg_mbps", thin_out, 0.1, 1.5);
  CheckEnvelope("asymmetric-access", "wide_leg_mbps", wide_out, 1.8, 4.4);
  CheckEnvelope("asymmetric-access", "thin_recv_mbps",
                SumInboundTput(stats, 2), 3.0, 8.8);
  EXPECT_EQ(InvariantRegistry::violation_count(), 0);
}

TEST(ScenarioSuiteTest, ChurnStormStructureAndFloors) {
  ScopedInvariants invariants;
  Conference conference(ChurnStormConfig(47));
  const ConferenceStats stats = conference.Run();

  // 4 duplex parties, p3 joining late, p1 leaving+rejoining, p2 leaving:
  // initial build is the 3x2 directed pairs of {0,1,2}; p3's join adds 6
  // legs; p1's leave freezes its 6, the rejoin adds 6 more (incarnation 1);
  // p2's leave freezes in place. 18 legs total.
  ASSERT_EQ(stats.legs.size(), 18u);

  int rejoin_legs = 0;
  for (const ConferenceStats::Leg& leg : stats.legs) {
    EXPECT_LE(leg.joined_s, leg.left_s);
    if (leg.from == 1 && leg.incarnation == 1) {
      ++rejoin_legs;
      EXPECT_DOUBLE_EQ(leg.joined_s, 12.0);
    }
    const double window = leg.left_s - leg.joined_s;
    if (window >= 3.0) {
      CheckEnvelope("churn-storm", "leg_fps_floor", leg.stats.AvgFps(), 20.0,
                    40.0);
    }
  }
  EXPECT_EQ(rejoin_legs, 3);

  // Lifetime accounting: p3 was in for 17 s, p1 for 8 + 8 s, p2 for 16 s.
  EXPECT_DOUBLE_EQ(stats.participants[0].active_s, 20.0);
  EXPECT_DOUBLE_EQ(stats.participants[1].active_s, 16.0);
  EXPECT_DOUBLE_EQ(stats.participants[2].active_s, 16.0);
  EXPECT_DOUBLE_EQ(stats.participants[3].active_s, 17.0);
  EXPECT_EQ(InvariantRegistry::violation_count(), 0);
}

TEST(ScenarioSuiteTest, CrossTrafficShareIsStableAndExported) {
  ScopedInvariants invariants;
  Conference conference(CrossTrafficShareConfig(59));
  const ConferenceStats stats = conference.Run();

  // One flow per direction's path-0 network.
  ASSERT_EQ(stats.cross_traffic.size(), 2u);
  for (const ConferenceStats::CrossFlow& flow : stats.cross_traffic) {
    EXPECT_EQ(flow.kind, "tcp");
    EXPECT_EQ(flow.name, "bulk");
    EXPECT_EQ(flow.path, 0);
    EXPECT_GT(flow.packets_delivered, 0);
    CheckEnvelope("cross-traffic-share", "bulk_tput_mbps",
                  flow.throughput_mbps, 2.0, 6.0);
  }
  // The call keeps a nonzero stable share (the delay-sensitive controller
  // concedes most of the shared 6 Mbps to the queue-building TCP flow but
  // holds the clean secondary).
  for (const ConferenceStats::ParticipantQoe& p : stats.participants) {
    CheckEnvelope("cross-traffic-share", "call_tput_mbps", p.total_tput_mbps,
                  1.0, 9.0);
    CheckEnvelope("cross-traffic-share", "call_fps", p.avg_fps, 20.0, 40.0);
  }
  // The flow is visible in the JSON export, for dashboards and CI
  // artifacts.
  const std::string json = ConferenceStatsToJson(stats);
  EXPECT_NE(json.find("\"cross_traffic\""), std::string::npos);
  EXPECT_NE(json.find("\"bulk\""), std::string::npos);
  EXPECT_NE(json.find("\"kind\": \"tcp\""), std::string::npos);
  EXPECT_EQ(InvariantRegistry::violation_count(), 0);
}

TEST(ScenarioSuiteTest, HubFailoverRecoversRehomedViewers) {
  ScopedInvariants invariants;
  Conference conference(HubFailoverConfig(67));
  const ConferenceStats stats = conference.Run();

  // Structure: hub 2 failed once and its 35 home participants (34 viewers +
  // publisher p2) re-homed onto hub 0, the next alive hub in ring order.
  ASSERT_EQ(stats.hubs.size(), 3u);
  EXPECT_EQ(stats.hubs[2].failures, 1);
  EXPECT_EQ(stats.hubs[2].rehomed_away, 35);
  EXPECT_EQ(stats.hubs[0].rehomed_onto, 35);
  EXPECT_EQ(stats.hubs[2].home_participants, 0);

  // Aggregate per-second receive rate of the re-homed viewers, summed over
  // every leg (pre-fault retired legs and post-rebuild fresh ones both
  // carry their own window's samples).
  auto rehomed_viewer = [](int p) { return p >= 3 && (p - 3) % 3 == 2; };
  std::vector<double> per_second(16, 0.0);
  for (const ConferenceStats::Leg& leg : stats.legs) {
    if (!rehomed_viewer(leg.to)) continue;
    for (const SecondSample& s : leg.stats.time_series) {
      const int t = static_cast<int>(s.t_s);
      if (t >= 0 && t < 16) per_second[static_cast<size_t>(t)] += s.tput_mbps;
    }
  }
  double pre = 0.0;
  for (int t = 3; t < 6; ++t) pre += per_second[static_cast<size_t>(t)];
  pre /= 3.0;
  ASSERT_GT(pre, 0.0);
  // Recovery: first whole second after the kill where the re-homed viewers'
  // aggregate rate is back to >= 50% of the pre-fault mean. The ISSUE
  // acceptance bound is 10 s; the pinned envelope is much tighter.
  double recovered_at = -1.0;
  for (int t = 7; t < 16; ++t) {
    if (per_second[static_cast<size_t>(t)] >= 0.5 * pre) {
      recovered_at = static_cast<double>(t);
      break;
    }
  }
  ASSERT_GE(recovered_at, 0.0) << "re-homed viewers never recovered to 50% "
                               << "of the pre-fault " << pre << " Mbps";
  const double normalized = pre / 34.0;  // per-viewer pre-fault rate
  CheckEnvelope("hub-failover", "pre_fault_viewer_mbps", normalized, 1.5,
                4.5);
  CheckEnvelope("hub-failover", "recovery_s", recovered_at - 6.0, 0.0, 10.0);
  EXPECT_EQ(InvariantRegistry::violation_count(), 0);
}

// ---------------------------------------------------------------------------
// Determinism: the whole scenario registry is byte-identical across worker
// counts and across reruns.
// ---------------------------------------------------------------------------

TEST(ScenarioSuiteTest, AllScenariosDeterministicAcrossJobsAndReruns) {
  ScopedInvariants invariants;
  for (const Scenario& scenario : AllScenarios()) {
    std::vector<std::string> serial, parallel, rerun;
    for (const ConferenceStats& s : RunConferences(scenario.configs, 1)) {
      serial.push_back(ConferenceStatsToJson(s));
    }
    for (const ConferenceStats& s : RunConferences(scenario.configs, 8)) {
      parallel.push_back(ConferenceStatsToJson(s));
    }
    for (const ConferenceStats& s : RunConferences(scenario.configs, 1)) {
      rerun.push_back(ConferenceStatsToJson(s));
    }
    ASSERT_EQ(serial.size(), scenario.configs.size()) << scenario.name;
    EXPECT_EQ(serial, parallel) << scenario.name
                                << ": jobs=8 diverged from jobs=1";
    EXPECT_EQ(serial, rerun) << scenario.name << ": rerun diverged";
  }
  EXPECT_EQ(InvariantRegistry::violation_count(), 0);
}

// ---------------------------------------------------------------------------
// Churn acceptance: leave + rejoin on a 3-party star recovers the
// rejoiner's receive rate, under a fresh SSRC incarnation, cleanly.
// ---------------------------------------------------------------------------

ConferenceConfig LeaveRejoinStarConfig() {
  ConferenceConfig config;
  config.variant = Variant::kConverge;
  config.topology = Topology::kStar;
  config.participants.assign(3, ParticipantSpec{});
  config.max_rate_per_stream = DataRate::MegabitsPerSec(3);
  config.duration = Duration::Seconds(16);
  config.seed = 7;
  config.paths_for_edge = [](int from, int) {
    if (from == kHubId) {
      return std::vector<PathSpec>{StablePath("d0", 16.0, 15),
                                   StablePath("d1", 12.0, 25)};
    }
    return std::vector<PathSpec>{StablePath("u0", 6.0, 20),
                                 StablePath("u1", 4.0, 35)};
  };
  config.membership = {
      {MembershipEvent::Kind::kLeave, At(4.0), 2},
      {MembershipEvent::Kind::kJoin, At(8.0), 2},
  };
  return config;
}

TEST(ScenarioSuiteTest, StarLeaveRejoinRecoversReceiveRate) {
  ScopedInvariants invariants;
  Conference conference(LeaveRejoinStarConfig());
  const ConferenceStats stats = conference.Run();

  // Pre-leave inbound rate at p2 (legs *->2 with window ending at the
  // leave) vs post-rejoin inbound rate (legs *->2 starting at the rejoin).
  double pre = 0.0, post = 0.0;
  for (const ConferenceStats::Leg& leg : stats.legs) {
    if (leg.to != 2) continue;
    if (leg.left_s <= 4.0) pre += leg.stats.TotalTputMbps();
    if (leg.joined_s >= 8.0) post += leg.stats.TotalTputMbps();
  }
  ASSERT_GT(pre, 0.0);
  EXPECT_GE(post, 0.5 * pre)
      << "rejoiner recovered only " << post << " of " << pre << " Mbps";
  // Above 1.0 is expected: the pre-leave window includes the slow-start
  // ramp from t=0 while the rejoin legs ride fresh, optimistically-seeded
  // hub downlinks.
  CheckEnvelope("leave-rejoin", "recovered_fraction", post / pre, 0.5, 6.0);

  // The rejoiner publishes under incarnation 1; everything it publishes
  // post-rejoin is a fresh leg with the rejoin timestamp.
  int rejoin_out = 0;
  for (const ConferenceStats::Leg& leg : stats.legs) {
    if (leg.from == 2 && leg.incarnation == 1) {
      ++rejoin_out;
      EXPECT_DOUBLE_EQ(leg.joined_s, 8.0);
      EXPECT_DOUBLE_EQ(leg.left_s, 16.0);
    }
  }
  EXPECT_EQ(rejoin_out, 2);
  EXPECT_EQ(InvariantRegistry::violation_count(), 0);
}

// Late joiners report lifetime-normalized QoE: their per-second rates are
// computed over their own membership window, so they are comparable to
// whole-call participants instead of being diluted by absent time.
TEST(ScenarioSuiteTest, LateJoinerQoeIsLifetimeNormalized) {
  ScopedInvariants invariants;
  ConferenceConfig config;
  config.variant = Variant::kConverge;
  config.topology = Topology::kMesh;
  config.participants.assign(3, ParticipantSpec{});
  config.paths = {StablePath("l0", 6.0, 20), StablePath("l1", 4.0, 35)};
  config.max_rate_per_stream = DataRate::MegabitsPerSec(3);
  config.duration = Duration::Seconds(12);
  config.seed = 13;
  config.membership = {{MembershipEvent::Kind::kJoin, At(6.0), 2}};
  Conference conference(config);
  const ConferenceStats stats = conference.Run();

  EXPECT_DOUBLE_EQ(stats.participants[2].active_s, 6.0);
  double full_fps = 0.0, late_fps = 0.0;
  int full_n = 0, late_n = 0;
  for (const ConferenceStats::Leg& leg : stats.legs) {
    if (leg.joined_s == 0.0 && leg.to != 2 && leg.from != 2) {
      full_fps += leg.stats.AvgFps();
      ++full_n;
    }
    if (leg.joined_s == 6.0) {
      EXPECT_DOUBLE_EQ(leg.left_s, 12.0);
      late_fps += leg.stats.AvgFps();
      ++late_n;
    }
  }
  ASSERT_GT(full_n, 0);
  ASSERT_EQ(late_n, 4);  // 2->{0,1} and {0,1}->2
  full_fps /= full_n;
  late_fps /= late_n;
  // Normalized over its own window, the late joiner's frame rate is within
  // 20% of the whole-call participants' — NOT roughly halved, which is what
  // whole-call normalization would report for a half-call member.
  EXPECT_GT(late_fps, 0.8 * full_fps);
  // And the lifetime-fair freeze metric stays a ratio in [0, 1].
  for (const ConferenceStats::ParticipantQoe& p : stats.participants) {
    EXPECT_GE(p.avg_freeze_ratio, 0.0);
    EXPECT_LE(p.avg_freeze_ratio, 1.0);
  }
  EXPECT_EQ(InvariantRegistry::violation_count(), 0);
}

// ---------------------------------------------------------------------------
// SSRC incarnations: rejoin allocations are disjoint from every earlier
// stream of every participant, so a rejoiner can never collide with its own
// previous life (or anyone else's) at a receiver or in the hub's
// per-(origin, path) sequence spaces, which are keyed by participant id and
// reset on leave.
// ---------------------------------------------------------------------------

TEST(ScenarioSuiteTest, SsrcIncarnationsAreDisjoint) {
  std::set<uint32_t> seen;
  for (int incarnation = 0; incarnation < 4; ++incarnation) {
    for (int participant = 0; participant < 8; ++participant) {
      for (int stream = 0; stream < SsrcAllocator::kMaxStreamsPerParticipant;
           ++stream) {
        const uint32_t ssrc =
            SsrcAllocator::StreamSsrc(participant, stream, incarnation);
        EXPECT_TRUE(seen.insert(ssrc).second)
            << "collision at inc=" << incarnation << " p=" << participant
            << " s=" << stream;
      }
    }
  }
  // Incarnation 0 is the historical layout: the legacy 2-arg form.
  EXPECT_EQ(SsrcAllocator::StreamSsrc(3, 1),
            SsrcAllocator::StreamSsrc(3, 1, 0));
  // Incarnation banks are whole disjoint ranges, not interleavings: the
  // maximum incarnation-0 SSRC sits below the minimum incarnation-1 SSRC.
  EXPECT_LT(SsrcAllocator::StreamSsrc(
                SsrcAllocator::kMaxParticipantsPerIncarnation - 1,
                SsrcAllocator::kMaxStreamsPerParticipant - 1, 0),
            SsrcAllocator::StreamSsrc(0, 0, 1));
}

}  // namespace
}  // namespace converge
