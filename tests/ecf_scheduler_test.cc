#include <gtest/gtest.h>

#include "schedulers/ecf_scheduler.h"

namespace converge {
namespace {

PathInfo MakePath(PathId id, double rate_mbps, double srtt_ms,
                  int64_t backlog = 0) {
  PathInfo p;
  p.id = id;
  p.allocated_rate = DataRate::MegabitsPerSec(rate_mbps);
  p.goodput = p.allocated_rate;
  p.srtt = Duration::Millis(static_cast<int64_t>(srtt_ms));
  p.pacer_queue_bytes = backlog;
  return p;
}

std::vector<RtpPacket> MakePackets(int n) {
  std::vector<RtpPacket> out;
  for (int i = 0; i < n; ++i) {
    RtpPacket p;
    p.seq = static_cast<uint16_t>(i);
    p.payload_bytes = 1100;
    out.push_back(p);
  }
  return out;
}

TEST(EcfTest, PrefersFastPathWhenIdle) {
  EcfScheduler sched;
  const auto assignment = sched.AssignFrame(
      MakePackets(5), {MakePath(0, 10, 100), MakePath(1, 10, 20)});
  for (PathId id : assignment) EXPECT_EQ(id, 1);
}

TEST(EcfTest, WaitsForFastPathWhenSlowPathIsWorse) {
  EcfScheduler sched;
  // Fast path backlogged by 20 ms of data, but the alternative's RTT alone
  // is 150 ms: ECF waits (keeps using the fast path) — this is where it
  // differs from plain minRTT spillover.
  std::vector<PathInfo> paths = {MakePath(0, 10, 20, /*backlog=*/25000),
                                 MakePath(1, 10, 300)};
  const auto assignment = sched.AssignFrame(MakePackets(20), paths);
  for (PathId id : assignment) EXPECT_EQ(id, 0);
}

TEST(EcfTest, SpillsWhenItGenuinelyCompletesEarlier) {
  EcfScheduler sched;
  // Fast path has a large backlog (~800 ms at 10 Mbps); the 60 ms-RTT
  // alternative clearly beats waiting.
  std::vector<PathInfo> paths = {MakePath(0, 10, 20, /*backlog=*/1'000'000),
                                 MakePath(1, 10, 60)};
  const auto assignment = sched.AssignFrame(MakePackets(10), paths);
  int on_alt = 0;
  for (PathId id : assignment) {
    if (id == 1) ++on_alt;
  }
  EXPECT_EQ(on_alt, 10);
}

TEST(EcfTest, BacklogAccumulatesWithinFrame) {
  EcfScheduler sched;
  // Both paths symmetric: a large frame eventually balances across both as
  // each path's in-frame backlog grows.
  std::vector<PathInfo> paths = {MakePath(0, 2, 30), MakePath(1, 2, 45)};
  const auto assignment = sched.AssignFrame(MakePackets(100), paths);
  std::map<PathId, int> counts;
  for (PathId id : assignment) ++counts[id];
  EXPECT_GT(counts[0], 0);
  EXPECT_GT(counts[1], 0);
}

TEST(EcfTest, SinglePathDegenerate) {
  EcfScheduler sched;
  const auto assignment =
      sched.AssignFrame(MakePackets(3), {MakePath(0, 10, 50)});
  for (PathId id : assignment) EXPECT_EQ(id, 0);
}

TEST(EcfTest, EmptyPathsYieldInvalid) {
  EcfScheduler sched;
  const auto assignment = sched.AssignFrame(MakePackets(3), {});
  for (PathId id : assignment) EXPECT_EQ(id, kInvalidPathId);
}

}  // namespace
}  // namespace converge
