#include <gtest/gtest.h>

#include "cc/aimd.h"
#include "cc/gcc.h"
#include "cc/loss_based.h"
#include "cc/pacer.h"
#include "cc/trendline.h"
#include "sim/event_loop.h"

namespace converge {
namespace {

TEST(TrendlineTest, StableDelaysStayNormal) {
  TrendlineEstimator est;
  Timestamp send = Timestamp::Zero();
  for (int i = 0; i < 200; ++i) {
    send += Duration::Millis(10);
    est.OnPacketFeedback(send, send + Duration::Millis(30));
  }
  EXPECT_EQ(est.State(), BandwidthUsage::kNormal);
}

TEST(TrendlineTest, GrowingQueueDetectsOveruse) {
  TrendlineEstimator est;
  Timestamp send = Timestamp::Zero();
  Duration queue = Duration::Millis(30);
  for (int i = 0; i < 300; ++i) {
    send += Duration::Millis(10);
    queue += Duration::Millis(3);  // steadily building queue
    est.OnPacketFeedback(send, send + queue);
  }
  EXPECT_EQ(est.State(), BandwidthUsage::kOverusing);
  EXPECT_GT(est.trend(), 0.0);
}

TEST(TrendlineTest, DrainingQueueDetectsUnderuse) {
  TrendlineEstimator est;
  Timestamp send = Timestamp::Zero();
  Duration queue = Duration::Millis(1000);
  // The queue drains continuously through the whole window.
  for (int i = 0; i < 150; ++i) {
    send += Duration::Millis(10);
    queue -= Duration::Millis(4);
    est.OnPacketFeedback(send, send + Duration::Millis(30) + queue);
  }
  EXPECT_EQ(est.State(), BandwidthUsage::kUnderusing);
}

TEST(AimdTest, IncreasesWhenNormal) {
  AimdRateControl aimd({}, DataRate::KilobitsPerSec(500));
  Timestamp now = Timestamp::Zero();
  DataRate acked = DataRate::KilobitsPerSec(500);
  for (int i = 0; i < 20; ++i) {
    now += Duration::Millis(100);
    acked = aimd.rate();  // the network delivers what we send
    aimd.Update(BandwidthUsage::kNormal, acked, now);
  }
  EXPECT_GT(aimd.rate().kbps(), 550.0);
}

TEST(AimdTest, DecreasesOnOveruse) {
  AimdRateControl aimd({}, DataRate::MegabitsPerSec(10));
  const DataRate measured = DataRate::MegabitsPerSec(6);
  aimd.Update(BandwidthUsage::kOverusing, measured, Timestamp::Millis(100));
  EXPECT_NEAR(aimd.rate().mbps(), 6.0 * 0.85, 0.01);
}

TEST(AimdTest, HoldsOnUnderuse) {
  AimdRateControl aimd({}, DataRate::MegabitsPerSec(5));
  aimd.Update(BandwidthUsage::kUnderusing, DataRate::MegabitsPerSec(5),
              Timestamp::Millis(100));
  EXPECT_EQ(aimd.rate(), DataRate::MegabitsPerSec(5));
}

TEST(AimdTest, RespectsMinMax) {
  AimdRateControl::Config c;
  c.min_rate = DataRate::KilobitsPerSec(100);
  c.max_rate = DataRate::KilobitsPerSec(1000);
  AimdRateControl aimd(c, DataRate::KilobitsPerSec(150));
  aimd.Update(BandwidthUsage::kOverusing, DataRate::KilobitsPerSec(10),
              Timestamp::Millis(1));
  EXPECT_EQ(aimd.rate(), c.min_rate);
  aimd.SetRate(DataRate::MegabitsPerSec(100));
  EXPECT_EQ(aimd.rate(), c.max_rate);
}

TEST(LossBasedTest, BacksOffAboveHighLoss) {
  LossBasedControl lb({}, DataRate::MegabitsPerSec(10));
  lb.OnLossReport(0.2, Timestamp::Millis(100));
  EXPECT_NEAR(lb.rate().mbps(), 10.0 * (1.0 - 0.5 * 0.2), 0.01);
}

TEST(LossBasedTest, GrowsBelowLowLoss) {
  LossBasedControl lb({}, DataRate::MegabitsPerSec(1));
  lb.OnLossReport(0.0, Timestamp::Millis(100));
  EXPECT_NEAR(lb.rate().mbps(), 1.05, 0.001);
  // Increase is rate-limited: immediate second report does not compound.
  lb.OnLossReport(0.0, Timestamp::Millis(120));
  EXPECT_NEAR(lb.rate().mbps(), 1.05, 0.001);
  lb.OnLossReport(0.0, Timestamp::Millis(400));
  EXPECT_NEAR(lb.rate().mbps(), 1.1025, 0.001);
}

TEST(LossBasedTest, HoldsInMiddleBand) {
  LossBasedControl lb({}, DataRate::MegabitsPerSec(5));
  lb.OnLossReport(0.05, Timestamp::Millis(100));
  EXPECT_EQ(lb.rate(), DataRate::MegabitsPerSec(5));
  EXPECT_GT(lb.smoothed_loss(), 0.0);
}

TEST(GccTest, TargetIsMinOfBranches) {
  GccController::Config c;
  c.start_rate = DataRate::MegabitsPerSec(5);
  GccController gcc(c);
  // Heavy loss drives the loss branch below the delay branch.
  for (int i = 0; i < 10; ++i) {
    gcc.OnReceiverReport(0.3, Duration::Millis(50),
                         Timestamp::Millis(100 * (i + 1)));
  }
  EXPECT_LT(gcc.target_rate().mbps(), 5.0);
  EXPECT_GT(gcc.loss_estimate(), 0.2);
}

TEST(GccTest, SmoothedRttTracksReports) {
  GccController gcc;
  for (int i = 0; i < 50; ++i) {
    gcc.OnReceiverReport(0.0, Duration::Millis(80),
                         Timestamp::Millis(100 * (i + 1)));
  }
  EXPECT_NEAR(gcc.smoothed_rtt().ms(), 80.0, 2.0);
}

TEST(GccTest, GoodputFromTransportFeedback) {
  GccController gcc;
  std::vector<PacketResult> results;
  Timestamp t = Timestamp::Millis(1000);
  // 100 packets x 1250 bytes over 500 ms => 2 Mbps.
  for (int i = 0; i < 100; ++i) {
    PacketResult r;
    r.transport_seq = i;
    r.bytes = 1250;
    r.send_time = t - Duration::Millis(40);
    r.recv_time = t;
    r.received = true;
    results.push_back(r);
    t += Duration::Millis(5);
  }
  gcc.OnTransportFeedback(results, t);
  EXPECT_NEAR(gcc.goodput().mbps(), 2.0, 0.5);
}

TEST(PacerTest, PacesAtConfiguredRate) {
  EventLoop loop;
  int64_t sent_bytes = 0;
  Pacer::Config config;
  config.max_queue_time = Duration::Seconds(100);  // no shedding here
  Pacer pacer(&loop, config,
              [&](RtpPacket&& p) { sent_bytes += p.wire_size(); });
  pacer.SetRate(DataRate::MegabitsPerSec(1));  // paced at 1.25 Mbps

  for (int i = 0; i < 1000; ++i) {
    RtpPacket p;
    p.payload_bytes = 1222;  // wire = 1250
    pacer.Enqueue(p);
  }
  loop.RunUntil(Timestamp::Seconds(1.0));
  // ~1.25 Mbps -> ~156 KB/s.
  EXPECT_NEAR(static_cast<double>(sent_bytes), 156250.0, 156250.0 * 0.1);
  EXPECT_GT(pacer.queue_packets(), 0u);
}

TEST(PacerTest, RtxJumpsAheadOfMediaBacklog) {
  EventLoop loop;
  std::vector<Priority> order;
  Pacer pacer(&loop, {}, [&](RtpPacket&& p) { order.push_back(p.priority); });
  pacer.SetRate(DataRate::MegabitsPerSec(2));
  for (int i = 0; i < 5; ++i) {
    RtpPacket media;
    media.payload_bytes = 1100;
    pacer.Enqueue(media);
  }
  RtpPacket rtx;
  rtx.priority = Priority::kRetransmit;
  rtx.payload_bytes = 1100;
  pacer.Enqueue(rtx);
  loop.RunUntil(Timestamp::Millis(100));
  ASSERT_FALSE(order.empty());
  // The retransmission overtakes the queued media.
  EXPECT_EQ(order.front(), Priority::kRetransmit);
}

TEST(PacerTest, StaleRtxDropped) {
  EventLoop loop;
  int rtx_sent = 0;
  Pacer::Config config;
  config.max_rtx_age = Duration::Millis(300);
  Pacer pacer(&loop, config, [&](RtpPacket&& p) {
    if (p.priority == Priority::kRetransmit) ++rtx_sent;
  });
  pacer.SetRate(DataRate::KilobitsPerSec(1));  // effectively stalled
  RtpPacket rtx;
  rtx.priority = Priority::kRetransmit;
  rtx.payload_bytes = 1100;
  pacer.Enqueue(rtx);
  loop.RunUntil(Timestamp::Seconds(2.0));
  // Too old to matter by the time bandwidth would have allowed it.
  EXPECT_EQ(rtx_sent, 0);
  EXPECT_EQ(pacer.stats().packets_dropped, 1);
}

TEST(AimdTest, QuietTimeAcceleratesRecovery) {
  // After a decrease, a long congestion-free stretch ramps much faster
  // than the base 8%/s (the outage-recovery behaviour).
  AimdRateControl slow({}, DataRate::MegabitsPerSec(10));
  AimdRateControl fast({}, DataRate::MegabitsPerSec(10));
  // Both decrease to the same point at t=0.
  slow.Update(BandwidthUsage::kOverusing, DataRate::KilobitsPerSec(100),
              Timestamp::Millis(0));
  fast.Update(BandwidthUsage::kOverusing, DataRate::KilobitsPerSec(100),
              Timestamp::Millis(0));
  ASSERT_EQ(slow.rate(), fast.rate());

  // `slow` updates right after the decrease (quiet < 2 s): gentle.
  DataRate acked = slow.rate();
  for (int i = 1; i <= 10; ++i) {
    acked = slow.rate();
    slow.Update(BandwidthUsage::kNormal, acked,
                Timestamp::Millis(100 * i));
  }
  // `fast` has been quiet for 10 s before its updates: aggressive ramp.
  acked = fast.rate();
  for (int i = 1; i <= 10; ++i) {
    acked = fast.rate();
    fast.Update(BandwidthUsage::kNormal, acked,
                Timestamp::Millis(10000 + 100 * i));
  }
  EXPECT_GT(fast.rate().bps(), slow.rate().bps());
}

TEST(PacerTest, ShedsStaleBacklog) {
  EventLoop loop;
  int sent = 0;
  Pacer::Config config;
  config.max_queue_time = Duration::Millis(400);
  Pacer pacer(&loop, config, [&](RtpPacket&&) { ++sent; });
  pacer.SetRate(DataRate::MegabitsPerSec(1));
  for (int i = 0; i < 1000; ++i) {
    RtpPacket p;
    p.payload_bytes = 1222;
    pacer.Enqueue(p);
  }
  loop.RunUntil(Timestamp::Seconds(2.0));
  EXPECT_GT(pacer.stats().packets_dropped, 0);
  // Backlog is bounded by the queue-time cap.
  EXPECT_LE(pacer.QueueDelay(), Duration::Millis(450));
}

TEST(PacerTest, SetsSendTimestamp) {
  EventLoop loop;
  Timestamp seen = Timestamp::MinusInfinity();
  Pacer pacer(&loop, {}, [&](RtpPacket&& p) { seen = p.send_time; });
  pacer.SetRate(DataRate::MegabitsPerSec(10));
  RtpPacket p;
  p.payload_bytes = 100;
  pacer.Enqueue(p);
  loop.RunUntil(Timestamp::Millis(20));
  EXPECT_TRUE(seen.IsFinite());
  EXPECT_GT(seen, Timestamp::Zero());
}

TEST(PacerTest, QueueDelayReflectsBacklog) {
  EventLoop loop;
  Pacer pacer(&loop, {}, [](RtpPacket&&) {});
  pacer.SetRate(DataRate::MegabitsPerSec(1));
  EXPECT_EQ(pacer.QueueDelay(), Duration::Zero());
  RtpPacket p;
  p.payload_bytes = 125000 - 28;  // 1 second at 1 Mbps (wire size 125 kB)
  pacer.Enqueue(p);
  EXPECT_NEAR(pacer.QueueDelay().seconds(), 0.8, 0.05);  // 1.25x pacing
}

}  // namespace
}  // namespace converge
