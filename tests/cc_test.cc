#include <gtest/gtest.h>

#include "cc/aimd.h"
#include "cc/cc_controller.h"
#include "cc/coupling.h"
#include "cc/cross.h"
#include "cc/gcc.h"
#include "cc/loss_based.h"
#include "cc/nada.h"
#include "cc/pacer.h"
#include "cc/trendline.h"
#include "sim/event_loop.h"
#include "util/invariants.h"

namespace converge {
namespace {

TEST(TrendlineTest, StableDelaysStayNormal) {
  TrendlineEstimator est;
  Timestamp send = Timestamp::Zero();
  for (int i = 0; i < 200; ++i) {
    send += Duration::Millis(10);
    est.OnPacketFeedback(send, send + Duration::Millis(30));
  }
  EXPECT_EQ(est.State(), BandwidthUsage::kNormal);
}

TEST(TrendlineTest, GrowingQueueDetectsOveruse) {
  TrendlineEstimator est;
  Timestamp send = Timestamp::Zero();
  Duration queue = Duration::Millis(30);
  for (int i = 0; i < 300; ++i) {
    send += Duration::Millis(10);
    queue += Duration::Millis(3);  // steadily building queue
    est.OnPacketFeedback(send, send + queue);
  }
  EXPECT_EQ(est.State(), BandwidthUsage::kOverusing);
  EXPECT_GT(est.trend(), 0.0);
}

TEST(TrendlineTest, DrainingQueueDetectsUnderuse) {
  TrendlineEstimator est;
  Timestamp send = Timestamp::Zero();
  Duration queue = Duration::Millis(1000);
  // The queue drains continuously through the whole window.
  for (int i = 0; i < 150; ++i) {
    send += Duration::Millis(10);
    queue -= Duration::Millis(4);
    est.OnPacketFeedback(send, send + Duration::Millis(30) + queue);
  }
  EXPECT_EQ(est.State(), BandwidthUsage::kUnderusing);
}

TEST(AimdTest, IncreasesWhenNormal) {
  AimdRateControl aimd({}, DataRate::KilobitsPerSec(500));
  Timestamp now = Timestamp::Zero();
  DataRate acked = DataRate::KilobitsPerSec(500);
  for (int i = 0; i < 20; ++i) {
    now += Duration::Millis(100);
    acked = aimd.rate();  // the network delivers what we send
    aimd.Update(BandwidthUsage::kNormal, acked, now);
  }
  EXPECT_GT(aimd.rate().kbps(), 550.0);
}

TEST(AimdTest, DecreasesOnOveruse) {
  AimdRateControl aimd({}, DataRate::MegabitsPerSec(10));
  const DataRate measured = DataRate::MegabitsPerSec(6);
  aimd.Update(BandwidthUsage::kOverusing, measured, Timestamp::Millis(100));
  EXPECT_NEAR(aimd.rate().mbps(), 6.0 * 0.85, 0.01);
}

TEST(AimdTest, HoldsOnUnderuse) {
  AimdRateControl aimd({}, DataRate::MegabitsPerSec(5));
  aimd.Update(BandwidthUsage::kUnderusing, DataRate::MegabitsPerSec(5),
              Timestamp::Millis(100));
  EXPECT_EQ(aimd.rate(), DataRate::MegabitsPerSec(5));
}

TEST(AimdTest, RespectsMinMax) {
  AimdRateControl::Config c;
  c.min_rate = DataRate::KilobitsPerSec(100);
  c.max_rate = DataRate::KilobitsPerSec(1000);
  AimdRateControl aimd(c, DataRate::KilobitsPerSec(150));
  aimd.Update(BandwidthUsage::kOverusing, DataRate::KilobitsPerSec(10),
              Timestamp::Millis(1));
  EXPECT_EQ(aimd.rate(), c.min_rate);
  aimd.SetRate(DataRate::MegabitsPerSec(100));
  EXPECT_EQ(aimd.rate(), c.max_rate);
}

TEST(LossBasedTest, BacksOffAboveHighLoss) {
  LossBasedControl lb({}, DataRate::MegabitsPerSec(10));
  lb.OnLossReport(0.2, Timestamp::Millis(100));
  EXPECT_NEAR(lb.rate().mbps(), 10.0 * (1.0 - 0.5 * 0.2), 0.01);
}

TEST(LossBasedTest, GrowsBelowLowLoss) {
  LossBasedControl lb({}, DataRate::MegabitsPerSec(1));
  lb.OnLossReport(0.0, Timestamp::Millis(100));
  EXPECT_NEAR(lb.rate().mbps(), 1.05, 0.001);
  // Increase is rate-limited: immediate second report does not compound.
  lb.OnLossReport(0.0, Timestamp::Millis(120));
  EXPECT_NEAR(lb.rate().mbps(), 1.05, 0.001);
  lb.OnLossReport(0.0, Timestamp::Millis(400));
  EXPECT_NEAR(lb.rate().mbps(), 1.1025, 0.001);
}

TEST(LossBasedTest, HoldsInMiddleBand) {
  LossBasedControl lb({}, DataRate::MegabitsPerSec(5));
  lb.OnLossReport(0.05, Timestamp::Millis(100));
  EXPECT_EQ(lb.rate(), DataRate::MegabitsPerSec(5));
  EXPECT_GT(lb.smoothed_loss(), 0.0);
}

TEST(GccTest, TargetIsMinOfBranches) {
  GccController::Config c;
  c.start_rate = DataRate::MegabitsPerSec(5);
  GccController gcc(c);
  // Heavy loss drives the loss branch below the delay branch.
  for (int i = 0; i < 10; ++i) {
    gcc.OnReceiverReport(0.3, Duration::Millis(50),
                         Timestamp::Millis(100 * (i + 1)));
  }
  EXPECT_LT(gcc.target_rate().mbps(), 5.0);
  EXPECT_GT(gcc.loss_estimate(), 0.2);
}

TEST(GccTest, SmoothedRttTracksReports) {
  GccController gcc;
  for (int i = 0; i < 50; ++i) {
    gcc.OnReceiverReport(0.0, Duration::Millis(80),
                         Timestamp::Millis(100 * (i + 1)));
  }
  EXPECT_NEAR(gcc.smoothed_rtt().ms(), 80.0, 2.0);
}

TEST(GccTest, GoodputFromTransportFeedback) {
  GccController gcc;
  std::vector<PacketResult> results;
  Timestamp t = Timestamp::Millis(1000);
  // 100 packets x 1250 bytes over 500 ms => 2 Mbps.
  for (int i = 0; i < 100; ++i) {
    PacketResult r;
    r.transport_seq = i;
    r.bytes = 1250;
    r.send_time = t - Duration::Millis(40);
    r.recv_time = t;
    r.received = true;
    results.push_back(r);
    t += Duration::Millis(5);
  }
  gcc.OnTransportFeedback(results, t);
  EXPECT_NEAR(gcc.goodput().mbps(), 2.0, 0.5);
}

TEST(PacerTest, PacesAtConfiguredRate) {
  EventLoop loop;
  int64_t sent_bytes = 0;
  Pacer::Config config;
  config.max_queue_time = Duration::Seconds(100);  // no shedding here
  Pacer pacer(&loop, config,
              [&](RtpPacket&& p) { sent_bytes += p.wire_size(); });
  pacer.SetRate(DataRate::MegabitsPerSec(1));  // paced at 1.25 Mbps

  for (int i = 0; i < 1000; ++i) {
    RtpPacket p;
    p.payload_bytes = 1222;  // wire = 1250
    pacer.Enqueue(p);
  }
  loop.RunUntil(Timestamp::Seconds(1.0));
  // ~1.25 Mbps -> ~156 KB/s.
  EXPECT_NEAR(static_cast<double>(sent_bytes), 156250.0, 156250.0 * 0.1);
  EXPECT_GT(pacer.queue_packets(), 0u);
}

TEST(PacerTest, RtxJumpsAheadOfMediaBacklog) {
  EventLoop loop;
  std::vector<Priority> order;
  Pacer pacer(&loop, {}, [&](RtpPacket&& p) { order.push_back(p.priority); });
  pacer.SetRate(DataRate::MegabitsPerSec(2));
  for (int i = 0; i < 5; ++i) {
    RtpPacket media;
    media.payload_bytes = 1100;
    pacer.Enqueue(media);
  }
  RtpPacket rtx;
  rtx.priority = Priority::kRetransmit;
  rtx.payload_bytes = 1100;
  pacer.Enqueue(rtx);
  loop.RunUntil(Timestamp::Millis(100));
  ASSERT_FALSE(order.empty());
  // The retransmission overtakes the queued media.
  EXPECT_EQ(order.front(), Priority::kRetransmit);
}

TEST(PacerTest, StaleRtxDropped) {
  EventLoop loop;
  int rtx_sent = 0;
  Pacer::Config config;
  config.max_rtx_age = Duration::Millis(300);
  Pacer pacer(&loop, config, [&](RtpPacket&& p) {
    if (p.priority == Priority::kRetransmit) ++rtx_sent;
  });
  pacer.SetRate(DataRate::KilobitsPerSec(1));  // effectively stalled
  RtpPacket rtx;
  rtx.priority = Priority::kRetransmit;
  rtx.payload_bytes = 1100;
  pacer.Enqueue(rtx);
  loop.RunUntil(Timestamp::Seconds(2.0));
  // Too old to matter by the time bandwidth would have allowed it.
  EXPECT_EQ(rtx_sent, 0);
  EXPECT_EQ(pacer.stats().packets_dropped, 1);
}

TEST(AimdTest, QuietTimeAcceleratesRecovery) {
  // After a decrease, a long congestion-free stretch ramps much faster
  // than the base 8%/s (the outage-recovery behaviour).
  AimdRateControl slow({}, DataRate::MegabitsPerSec(10));
  AimdRateControl fast({}, DataRate::MegabitsPerSec(10));
  // Both decrease to the same point at t=0.
  slow.Update(BandwidthUsage::kOverusing, DataRate::KilobitsPerSec(100),
              Timestamp::Millis(0));
  fast.Update(BandwidthUsage::kOverusing, DataRate::KilobitsPerSec(100),
              Timestamp::Millis(0));
  ASSERT_EQ(slow.rate(), fast.rate());

  // `slow` updates right after the decrease (quiet < 2 s): gentle.
  DataRate acked = slow.rate();
  for (int i = 1; i <= 10; ++i) {
    acked = slow.rate();
    slow.Update(BandwidthUsage::kNormal, acked,
                Timestamp::Millis(100 * i));
  }
  // `fast` has been quiet for 10 s before its updates: aggressive ramp.
  acked = fast.rate();
  for (int i = 1; i <= 10; ++i) {
    acked = fast.rate();
    fast.Update(BandwidthUsage::kNormal, acked,
                Timestamp::Millis(10000 + 100 * i));
  }
  EXPECT_GT(fast.rate().bps(), slow.rate().bps());
}

TEST(PacerTest, ShedsStaleBacklog) {
  EventLoop loop;
  int sent = 0;
  Pacer::Config config;
  config.max_queue_time = Duration::Millis(400);
  Pacer pacer(&loop, config, [&](RtpPacket&&) { ++sent; });
  pacer.SetRate(DataRate::MegabitsPerSec(1));
  for (int i = 0; i < 1000; ++i) {
    RtpPacket p;
    p.payload_bytes = 1222;
    pacer.Enqueue(p);
  }
  loop.RunUntil(Timestamp::Seconds(2.0));
  EXPECT_GT(pacer.stats().packets_dropped, 0);
  // Backlog is bounded by the queue-time cap.
  EXPECT_LE(pacer.QueueDelay(), Duration::Millis(450));
}

TEST(PacerTest, SetsSendTimestamp) {
  EventLoop loop;
  Timestamp seen = Timestamp::MinusInfinity();
  Pacer pacer(&loop, {}, [&](RtpPacket&& p) { seen = p.send_time; });
  pacer.SetRate(DataRate::MegabitsPerSec(10));
  RtpPacket p;
  p.payload_bytes = 100;
  pacer.Enqueue(p);
  loop.RunUntil(Timestamp::Millis(20));
  EXPECT_TRUE(seen.IsFinite());
  EXPECT_GT(seen, Timestamp::Zero());
}

TEST(TrendlineTest, DetectorTransitionsThroughAllStates) {
  // Pin the detector's state sequence: stable -> overuse (queue building)
  // -> underuse (queue draining) -> normal (stable again).
  TrendlineEstimator est;
  Timestamp send = Timestamp::Zero();
  Duration queue = Duration::Millis(30);
  for (int i = 0; i < 100; ++i) {
    send += Duration::Millis(10);
    est.OnPacketFeedback(send, send + queue);
  }
  EXPECT_EQ(est.State(), BandwidthUsage::kNormal);
  for (int i = 0; i < 200; ++i) {
    send += Duration::Millis(10);
    queue += Duration::Millis(3);
    est.OnPacketFeedback(send, send + queue);
  }
  EXPECT_EQ(est.State(), BandwidthUsage::kOverusing);
  for (int i = 0; i < 150; ++i) {
    send += Duration::Millis(10);
    if (queue > Duration::Millis(8)) queue -= Duration::Millis(4);
    est.OnPacketFeedback(send, send + queue);
  }
  EXPECT_EQ(est.State(), BandwidthUsage::kUnderusing);
  for (int i = 0; i < 300; ++i) {
    send += Duration::Millis(10);
    est.OnPacketFeedback(send, send + queue);
  }
  EXPECT_EQ(est.State(), BandwidthUsage::kNormal);
}

TEST(TrendlineTest, DetectorGainCountsDeltasBeyondRegressionWindow) {
  // Regression for the dead gain cap: the detector scales the trend by
  // min(num_deltas, 60), where num_deltas counts ALL observed inter-group
  // deltas — it is NOT bounded by the regression window size. With a small
  // window (4 points) a modest 3 ms/group buildup still reaches the
  // overuse threshold because the gain keeps growing to 60; the pre-fix
  // code scaled by window_.size() (capped at the window), leaving the
  // modified trend permanently under the threshold here.
  TrendlineEstimator::Config config;
  config.window_size = 4;
  TrendlineEstimator est(config);
  Timestamp send = Timestamp::Zero();
  Duration queue = Duration::Millis(30);
  for (int i = 0; i < 300; ++i) {
    send += Duration::Millis(10);
    queue += Duration::Millis(3);
    est.OnPacketFeedback(send, send + queue);
  }
  EXPECT_GT(est.num_deltas(), 60);  // raw count keeps growing past the cap
  EXPECT_EQ(est.State(), BandwidthUsage::kOverusing);
}

TEST(AimdTest, LinkCapacityVarianceTracksSampleSpread) {
  // Regression for the frozen capacity variance: scattered throughput
  // samples at decrease points must widen the near-capacity band (variance
  // rises above the 0.4 floor); tight samples must let it decay back down.
  // Pre-fix the variance was initialized to 0.4 and never written again.
  AimdRateControl aimd({}, DataRate::MegabitsPerSec(10));
  EXPECT_DOUBLE_EQ(aimd.link_capacity_variance(), 0.4);

  Timestamp now = Timestamp::Zero();
  // Widely scattered capacity samples: alternate 2 and 8 Mbps decreases.
  for (int i = 0; i < 30; ++i) {
    now += Duration::Millis(500);
    const DataRate measured =
        (i % 2 == 0) ? DataRate::MegabitsPerSec(2) : DataRate::MegabitsPerSec(8);
    aimd.SetRate(DataRate::MegabitsPerSec(10));
    aimd.Update(BandwidthUsage::kOverusing, measured, now);
  }
  const double spread_var = aimd.link_capacity_variance();
  EXPECT_GT(spread_var, 0.4);
  EXPECT_LE(spread_var, 2.5);

  // Tight samples exactly at the estimate: variance decays back to the
  // floor instead of staying pinned at the widened value.
  for (int i = 0; i < 100; ++i) {
    now += Duration::Millis(500);
    const DataRate at_estimate =
        DataRate::BitsPerSec(static_cast<int64_t>(aimd.link_capacity_estimate_bps()));
    aimd.SetRate(DataRate::MegabitsPerSec(10));
    aimd.Update(BandwidthUsage::kOverusing, at_estimate, now);
  }
  EXPECT_LT(aimd.link_capacity_variance(), spread_var);
  EXPECT_NEAR(aimd.link_capacity_variance(), 0.4, 1e-9);
}

TEST(GccTest, ZeroRttReportStillFeedsLossBranch) {
  // Accept-loss-only policy: a receiver report whose SR echo produced no
  // RTT sample (rtt <= 0) must still drive the loss branch — rejecting the
  // whole report would blind loss-based control exactly when SRs are lost.
  // The bogus zero RTT itself is NOT folded into srtt.
  GccController gcc;
  const double srtt_before = gcc.smoothed_rtt().ms();
  for (int i = 0; i < 10; ++i) {
    gcc.OnReceiverReport(0.3, Duration::Zero(),
                         Timestamp::Millis(100 * (i + 1)));
  }
  EXPECT_GT(gcc.loss_estimate(), 0.2);             // loss consumed
  EXPECT_LT(gcc.target_rate().kbps(), 300.0);      // loss branch acted
  EXPECT_DOUBLE_EQ(gcc.smoothed_rtt().ms(), srtt_before);  // rtt rejected
}

// --- CcController factory -------------------------------------------------

TEST(CcControllerTest, FactoryBuildsEveryAlgorithm) {
  CcConfig config;
  for (const CcAlgorithm a :
       {CcAlgorithm::kGcc, CcAlgorithm::kNada, CcAlgorithm::kCross}) {
    config.algorithm = a;
    auto cc = MakeCcController(config);
    ASSERT_NE(cc, nullptr);
    EXPECT_EQ(cc->name(), ToString(a));
    EXPECT_EQ(cc->target_rate(), config.start_rate);
  }
}

TEST(CcControllerTest, TokenParsingRoundTrips) {
  CcAlgorithm a = CcAlgorithm::kGcc;
  EXPECT_TRUE(ParseCcAlgorithm("nada", &a));
  EXPECT_EQ(a, CcAlgorithm::kNada);
  EXPECT_TRUE(ParseCcAlgorithm("cross", &a));
  EXPECT_EQ(a, CcAlgorithm::kCross);
  EXPECT_TRUE(ParseCcAlgorithm("gcc", &a));
  EXPECT_EQ(a, CcAlgorithm::kGcc);
  EXPECT_FALSE(ParseCcAlgorithm("bbr", &a));

  CcCoupling c = CcCoupling::kUncoupled;
  EXPECT_TRUE(ParseCcCoupling("mp-weighted", &c));
  EXPECT_EQ(c, CcCoupling::kWeighted);
  EXPECT_TRUE(ParseCcCoupling("mp-rr", &c));
  EXPECT_EQ(c, CcCoupling::kRoundRobin);
  EXPECT_TRUE(ParseCcCoupling("mp-best", &c));
  EXPECT_EQ(c, CcCoupling::kBestPath);
  EXPECT_TRUE(ParseCcCoupling("uncoupled", &c));
  EXPECT_EQ(c, CcCoupling::kUncoupled);
  EXPECT_FALSE(ParseCcCoupling("mp-olia", &c));
}

TEST(CcControllerTest, ForgedAlgorithmScreamsAndFallsBackToGcc) {
  InvariantRegistry::Clear();
  ScopedInvariants enable;
  CcConfig config;
  config.algorithm = static_cast<CcAlgorithm>(99);
  auto cc = MakeCcController(config);
  ASSERT_NE(cc, nullptr);
  EXPECT_STREQ(cc->name(), "gcc");
  EXPECT_GT(InvariantRegistry::violation_count(), 0);
  InvariantRegistry::Clear();
}

// --- NADA ------------------------------------------------------------------

// One clean feedback batch: `count` packets, `owd` one-way delay, spaced
// `spacing` apart, ending at `now`.
std::vector<PacketResult> CleanBatch(Timestamp now, int count, Duration owd,
                                     Duration spacing, int64_t* seq) {
  std::vector<PacketResult> results;
  for (int i = 0; i < count; ++i) {
    PacketResult r;
    r.transport_seq = (*seq)++;
    r.bytes = 1200;
    r.recv_time = now - spacing * static_cast<int64_t>(count - 1 - i);
    r.send_time = r.recv_time - owd;
    r.received = true;
    results.push_back(r);
  }
  return results;
}

TEST(NadaTest, RampsUpWhenUncongested) {
  CcConfig config;
  config.start_rate = DataRate::KilobitsPerSec(300);
  NadaController nada(config);
  int64_t seq = 0;
  Timestamp now = Timestamp::Zero();
  // 10 s of clean 50-packet batches at constant 30 ms OWD: no queuing
  // signal, so the accelerated ramp-up should push well past start.
  for (int batch = 0; batch < 100; ++batch) {
    now += Duration::Millis(100);
    nada.OnTransportFeedback(
        CleanBatch(now, 50, Duration::Millis(30), Duration::Millis(2), &seq),
        now);
  }
  EXPECT_GT(nada.target_rate().kbps(), 600.0);
  EXPECT_LT(nada.queue_delay_ms(), 5.0);
}

TEST(NadaTest, BacksOffOnQueueBuildup) {
  CcConfig config;
  config.start_rate = DataRate::MegabitsPerSec(2);
  NadaController nada(config);
  int64_t seq = 0;
  Timestamp now = Timestamp::Zero();
  // Establish the 30 ms baseline, then grow the OWD to 230 ms: the
  // composite signal sits far above XREF and the gradual update must pull
  // the rate down.
  for (int batch = 0; batch < 10; ++batch) {
    now += Duration::Millis(100);
    nada.OnTransportFeedback(
        CleanBatch(now, 50, Duration::Millis(30), Duration::Millis(2), &seq),
        now);
  }
  const double rate_before = nada.target_rate().kbps();
  Duration owd = Duration::Millis(30);
  for (int batch = 0; batch < 50; ++batch) {
    now += Duration::Millis(100);
    if (owd < Duration::Millis(230)) owd += Duration::Millis(10);
    nada.OnTransportFeedback(
        CleanBatch(now, 50, owd, Duration::Millis(2), &seq), now);
  }
  EXPECT_GT(nada.queue_delay_ms(), 50.0);
  EXPECT_LT(nada.target_rate().kbps(), rate_before * 0.8);
}

TEST(NadaTest, ZeroRttReportStillConsumesLoss) {
  NadaController nada(CcConfig{});
  const double srtt_before = nada.smoothed_rtt().ms();
  for (int i = 0; i < 10; ++i) {
    nada.OnReceiverReport(0.25, Duration::Zero(),
                          Timestamp::Millis(100 * (i + 1)));
  }
  EXPECT_GT(nada.loss_estimate(), 0.2);
  EXPECT_DOUBLE_EQ(nada.smoothed_rtt().ms(), srtt_before);
}

// --- Cross -----------------------------------------------------------------

TEST(CrossTest, IncreasesWithHeadroom) {
  CcConfig config;
  config.start_rate = DataRate::KilobitsPerSec(400);
  CrossController cross(config);
  int64_t seq = 0;
  Timestamp now = Timestamp::Zero();
  for (int batch = 0; batch < 100; ++batch) {
    now += Duration::Millis(100);
    cross.OnTransportFeedback(
        CleanBatch(now, 50, Duration::Millis(25), Duration::Millis(2), &seq),
        now);
  }
  EXPECT_GT(cross.target_rate().kbps(), 700.0);
  EXPECT_LT(cross.queue_delay_ms(), 10.0);
}

TEST(CrossTest, BacksOffAboveQueueBudget) {
  CcConfig config;
  config.start_rate = DataRate::MegabitsPerSec(2);
  CrossController cross(config);
  int64_t seq = 0;
  Timestamp now = Timestamp::Zero();
  for (int batch = 0; batch < 10; ++batch) {
    now += Duration::Millis(100);
    cross.OnTransportFeedback(
        CleanBatch(now, 50, Duration::Millis(25), Duration::Millis(2), &seq),
        now);
  }
  const double rate_before = cross.target_rate().kbps();
  // Hold the queue 100 ms over the 50 ms budget for 5 s.
  for (int batch = 0; batch < 50; ++batch) {
    now += Duration::Millis(100);
    cross.OnTransportFeedback(
        CleanBatch(now, 50, Duration::Millis(175), Duration::Millis(2), &seq),
        now);
  }
  EXPECT_GT(cross.queue_delay_ms(), 50.0);
  EXPECT_LT(cross.target_rate().kbps(), rate_before * 0.7);
}

TEST(CrossTest, HeavyLossBacksOffDebounced) {
  CcConfig config;
  config.start_rate = DataRate::KilobitsPerSec(400);
  CrossController cross(config);
  int64_t seq = 0;
  // One batch: 40 received, 40 lost (50% loss, far over the 10% gate).
  auto lossy_batch = [&](Timestamp now) {
    std::vector<PacketResult> results =
        CleanBatch(now, 40, Duration::Millis(30), Duration::Millis(1), &seq);
    for (int i = 0; i < 40; ++i) {
      PacketResult r;
      r.transport_seq = seq++;
      r.bytes = 1200;
      r.send_time = now - Duration::Millis(30);
      r.received = false;
      results.push_back(r);
    }
    return results;
  };
  const double before = cross.target_rate().kbps();
  // Two heavy-loss batches 50 ms apart: only the first may back the rate
  // off (the 300 ms debounce absorbs the second).
  cross.OnTransportFeedback(lossy_batch(Timestamp::Millis(100)),
                            Timestamp::Millis(100));
  const double after_first = cross.target_rate().kbps();
  cross.OnTransportFeedback(lossy_batch(Timestamp::Millis(150)),
                            Timestamp::Millis(150));
  const double after_second = cross.target_rate().kbps();
  EXPECT_LT(after_first, before);
  EXPECT_DOUBLE_EQ(after_second, after_first);
  // A third batch past the debounce window backs off again.
  cross.OnTransportFeedback(lossy_batch(Timestamp::Millis(600)),
                            Timestamp::Millis(600));
  EXPECT_LT(cross.target_rate().kbps(), after_second);
}

// --- Coupling --------------------------------------------------------------

PathCcSnapshot Snap(int64_t target_kbps, int64_t goodput_kbps) {
  PathCcSnapshot s;
  s.target = DataRate::KilobitsPerSec(target_kbps);
  s.goodput = DataRate::KilobitsPerSec(goodput_kbps);
  return s;
}

TEST(CouplingTest, UncoupledIsIdentity) {
  const std::vector<PathCcSnapshot> paths = {Snap(1000, 900), Snap(400, 350)};
  const auto rates = CoupleRates(CcCoupling::kUncoupled, paths,
                                 DataRate::KilobitsPerSec(50));
  ASSERT_EQ(rates.size(), 2u);
  EXPECT_EQ(rates[0], paths[0].target);
  EXPECT_EQ(rates[1], paths[1].target);
}

TEST(CouplingTest, WeightedSplitsAggregateByGoodputShare) {
  const std::vector<PathCcSnapshot> paths = {Snap(1000, 1500), Snap(1000, 500)};
  const auto rates = CoupleRates(CcCoupling::kWeighted, paths,
                                 DataRate::KilobitsPerSec(50));
  ASSERT_EQ(rates.size(), 2u);
  // Aggregate 2000 kbps split 75/25 by goodput share.
  EXPECT_NEAR(rates[0].kbps(), 1500.0, 1.0);
  EXPECT_NEAR(rates[1].kbps(), 500.0, 1.0);
  EXPECT_NEAR(rates[0].kbps() + rates[1].kbps(), 2000.0, 1.0);

  // No goodput anywhere yet: equal split, not a division by zero.
  const std::vector<PathCcSnapshot> cold = {Snap(600, 0), Snap(200, 0)};
  const auto cold_rates = CoupleRates(CcCoupling::kWeighted, cold,
                                      DataRate::KilobitsPerSec(50));
  EXPECT_NEAR(cold_rates[0].kbps(), 400.0, 1.0);
  EXPECT_NEAR(cold_rates[1].kbps(), 400.0, 1.0);
}

TEST(CouplingTest, RoundRobinSplitsAggregateEqually) {
  const std::vector<PathCcSnapshot> paths = {Snap(900, 800), Snap(300, 200),
                                             Snap(300, 100)};
  const auto rates = CoupleRates(CcCoupling::kRoundRobin, paths,
                                 DataRate::KilobitsPerSec(50));
  ASSERT_EQ(rates.size(), 3u);
  for (const DataRate& r : rates) EXPECT_NEAR(r.kbps(), 500.0, 1.0);
}

TEST(CouplingTest, BestPathPinsAggregateToHighestTarget) {
  const std::vector<PathCcSnapshot> paths = {Snap(400, 300), Snap(1000, 900)};
  const DataRate floor = DataRate::KilobitsPerSec(50);
  const auto rates = CoupleRates(CcCoupling::kBestPath, paths, floor);
  ASSERT_EQ(rates.size(), 2u);
  EXPECT_NEAR(rates[1].kbps(), 1400.0, 1.0);  // aggregate on the best path
  EXPECT_EQ(rates[0], floor);                 // loser held at the floor

  // Ties go to the first path, deterministically.
  const std::vector<PathCcSnapshot> tied = {Snap(500, 0), Snap(500, 0)};
  const auto tie_rates = CoupleRates(CcCoupling::kBestPath, tied, floor);
  EXPECT_NEAR(tie_rates[0].kbps(), 1000.0, 1.0);
  EXPECT_EQ(tie_rates[1], floor);
}

TEST(CouplingTest, AllocationsRespectTheFloor) {
  const DataRate floor = DataRate::KilobitsPerSec(50);
  const std::vector<PathCcSnapshot> paths = {Snap(60, 10000), Snap(60, 1)};
  for (const CcCoupling c :
       {CcCoupling::kUncoupled, CcCoupling::kWeighted, CcCoupling::kRoundRobin,
        CcCoupling::kBestPath}) {
    for (const DataRate& r : CoupleRates(c, paths, floor)) {
      EXPECT_GE(r, floor) << ToString(c);
    }
  }
}

TEST(CouplingTest, ForgedCouplingScreamsAndFallsBackToIdentity) {
  InvariantRegistry::Clear();
  ScopedInvariants enable;
  const std::vector<PathCcSnapshot> paths = {Snap(800, 700), Snap(200, 100)};
  const auto rates = CoupleRates(static_cast<CcCoupling>(77), paths,
                                 DataRate::KilobitsPerSec(50));
  ASSERT_EQ(rates.size(), 2u);
  EXPECT_EQ(rates[0], paths[0].target);
  EXPECT_EQ(rates[1], paths[1].target);
  EXPECT_GT(InvariantRegistry::violation_count(), 0);
  InvariantRegistry::Clear();
}

TEST(PacerTest, QueueDelayReflectsBacklog) {
  EventLoop loop;
  Pacer pacer(&loop, {}, [](RtpPacket&&) {});
  pacer.SetRate(DataRate::MegabitsPerSec(1));
  EXPECT_EQ(pacer.QueueDelay(), Duration::Zero());
  RtpPacket p;
  p.payload_bytes = 125000 - 28;  // 1 second at 1 Mbps (wire size 125 kB)
  pacer.Enqueue(p);
  EXPECT_NEAR(pacer.QueueDelay().seconds(), 0.8, 0.05);  // 1.25x pacing
}

}  // namespace
}  // namespace converge
