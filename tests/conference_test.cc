// Conference runtime coverage: the 2-party Call adapter's byte-identity
// against the pinned seed-era fixtures, 3-party mesh determinism across
// worker counts and reruns, star-topology forwarding correctness, the
// faulted-mesh chaos run CI pins under ASan, and the participant-scoped
// SSRC allocator.
#include <gtest/gtest.h>

#include <fstream>
#include <set>
#include <sstream>
#include <string_view>
#include <string>
#include <vector>

#include "net/fault_plan.h"
#include "net/loss_model.h"
#include "rtp/ssrc_allocator.h"
#include "session/call.h"
#include "session/conference.h"
#include "session/stats_json.h"
#include "trace/generators.h"
#include "util/invariants.h"

namespace converge {
namespace {

PathSpec StablePath(const std::string& name, double mbps, int delay_ms,
                    double loss = 0.0) {
  PathSpec spec;
  spec.name = name;
  spec.capacity = BandwidthTrace::Constant(DataRate::MegabitsPerSec(mbps));
  spec.prop_delay = Duration::Millis(delay_ms);
  if (loss > 0.0) spec.loss = std::make_shared<BernoulliLoss>(loss);
  return spec;
}

// Mirrors FixtureConfig() in gen_call_fixtures.cc — the exact configuration
// the pinned tests/data fixtures were generated from, on the pre-conference
// point-to-point Call implementation.
CallConfig FixtureCallConfig(Variant variant) {
  PathSpec p0;
  p0.name = "fix0";
  p0.capacity = BandwidthTrace::Constant(DataRate::MegabitsPerSec(15));
  p0.prop_delay = Duration::Millis(20);
  p0.loss = std::make_shared<BernoulliLoss>(0.02);
  PathSpec p1;
  p1.name = "fix1";
  p1.capacity = BandwidthTrace::Constant(DataRate::MegabitsPerSec(8));
  p1.prop_delay = Duration::Millis(45);
  p1.loss = std::make_shared<BernoulliLoss>(0.01);

  CallConfig config;
  config.variant = variant;
  config.paths = {p0, p1};
  config.num_streams = 2;
  config.duration = Duration::Seconds(8);
  config.seed = 17;
  return config;
}

std::string FixtureFileName(Variant v) {
  switch (v) {
    case Variant::kWebRtcPath0: return "call_fixture_webrtc_p0.json";
    case Variant::kWebRtcPath1: return "call_fixture_webrtc_p1.json";
    case Variant::kWebRtcCm: return "call_fixture_webrtc_cm.json";
    case Variant::kSrtt: return "call_fixture_srtt.json";
    case Variant::kEcf: return "call_fixture_ecf.json";
    case Variant::kMtput: return "call_fixture_mtput.json";
    case Variant::kMrtp: return "call_fixture_mrtp.json";
    case Variant::kConverge: return "call_fixture_converge.json";
    case Variant::kConvergeNoFeedback: return "call_fixture_converge_nofb.json";
    case Variant::kConvergeWebRtcFec:
      return "call_fixture_converge_tblfec.json";
  }
  return "call_fixture_unknown.json";
}

std::string ReadFixture(Variant v) {
  const std::string path =
      std::string(CONVERGE_TEST_DATA_DIR) + "/" + FixtureFileName(v);
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.is_open()) << "missing fixture " << path;
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

// A small every-participant-duplex conference on two stable paths.
ConferenceConfig MeshConfig(int participants, Duration duration,
                            uint64_t seed) {
  ConferenceConfig config;
  config.variant = Variant::kConverge;
  config.topology = Topology::kMesh;
  config.participants.assign(static_cast<size_t>(participants),
                             ParticipantSpec{});
  config.paths = {StablePath("m0", 6.0, 20, 0.01),
                  StablePath("m1", 4.0, 35, 0.005)};
  config.max_rate_per_stream = DataRate::MegabitsPerSec(3);
  config.duration = duration;
  config.seed = seed;
  return config;
}

ConferenceConfig StarConfig(int participants, Duration duration,
                            uint64_t seed) {
  ConferenceConfig config = MeshConfig(participants, duration, seed);
  config.topology = Topology::kStar;
  // Uplinks keep the mesh path template; hub->receiver downlinks are
  // provisioned for the aggregate of all forwarded senders, so the hub's
  // per-downlink controllers stay uncongested and forwarding is lossless.
  config.paths_for_edge = [participants](int from, int) {
    if (from == kHubId) {
      const double scale = static_cast<double>(participants - 1);
      return std::vector<PathSpec>{
          StablePath("d0", 8.0 * scale, 15),
          StablePath("d1", 6.0 * scale, 25)};
    }
    return std::vector<PathSpec>{StablePath("u0", 6.0, 20, 0.01),
                                 StablePath("u1", 4.0, 35, 0.005)};
  };
  return config;
}

// --- Satellite: the participant-scoped SSRC allocator -----------------------

TEST(SsrcAllocatorTest, ParticipantZeroKeepsLegacyLayout) {
  EXPECT_EQ(SsrcAllocator::StreamSsrc(0, 0), 0x1000u);
  EXPECT_EQ(SsrcAllocator::StreamSsrc(0, 2), 0x1002u);
}

TEST(SsrcAllocatorTest, BlocksAreDisjointAcrossParticipants) {
  std::set<uint32_t> seen;
  for (int p = 0; p < 8; ++p) {
    for (int s = 0; s < 16; ++s) {
      EXPECT_TRUE(seen.insert(SsrcAllocator::StreamSsrc(p, s)).second)
          << "collision at participant " << p << " stream " << s;
    }
  }
}

// --- The 2-party Call adapter ----------------------------------------------

TEST(ConferenceAdapterTest, MatchesSeedEraFixtureForEveryVariant) {
  for (Variant v :
       {Variant::kWebRtcPath0, Variant::kWebRtcPath1, Variant::kWebRtcCm,
        Variant::kSrtt, Variant::kEcf, Variant::kMtput, Variant::kMrtp,
        Variant::kConverge, Variant::kConvergeNoFeedback,
        Variant::kConvergeWebRtcFec}) {
    Call call(FixtureCallConfig(v));
    const CallStats stats = call.Run();
    EXPECT_EQ(CallStatsToJson(stats), ReadFixture(v))
        << "adapter result drifted from the pre-refactor implementation for "
        << ToString(v);
  }
}

// Mirrors FixtureConferenceConfig() in gen_call_fixtures.cc — the exact
// configuration conference_fixture_star3.json was generated from.
ConferenceConfig FixtureConferenceConfig() {
  ConferenceConfig config;
  config.variant = Variant::kConverge;
  config.topology = Topology::kStar;
  config.participants.assign(3, ParticipantSpec{});
  config.max_rate_per_stream = DataRate::MegabitsPerSec(3);
  config.duration = Duration::Seconds(8);
  config.seed = 29;
  config.paths_for_edge = [](int from, int) {
    PathSpec p0;
    p0.name = from == kHubId ? "fixd0" : "fixu0";
    p0.capacity = BandwidthTrace::Constant(
        DataRate::MegabitsPerSec(from == kHubId ? 12.0 : 6.0));
    p0.prop_delay = Duration::Millis(from == kHubId ? 15 : 20);
    p0.loss = std::make_shared<BernoulliLoss>(0.01);
    PathSpec p1;
    p1.name = from == kHubId ? "fixd1" : "fixu1";
    p1.capacity = BandwidthTrace::Constant(
        DataRate::MegabitsPerSec(from == kHubId ? 8.0 : 4.0));
    p1.prop_delay = Duration::Millis(from == kHubId ? 25 : 35);
    p1.loss = std::make_shared<BernoulliLoss>(0.005);
    return std::vector<PathSpec>{p0, p1};
  };
  return config;
}

// Pins the whole ConferenceStats JSON export — values AND schema (the
// churn-era participant/leg fields and the cross_traffic array included) —
// against the committed fixture. Regenerate with gen_call_fixtures and
// commit the diff when a PR intentionally changes conference results.
TEST(ConferenceAdapterTest, StarThreePartyMatchesPinnedFixture) {
  Conference conference(FixtureConferenceConfig());
  const ConferenceStats stats = conference.Run();
  const std::string path =
      std::string(CONVERGE_TEST_DATA_DIR) + "/conference_fixture_star3.json";
  std::ifstream in(path, std::ios::binary);
  ASSERT_TRUE(in.is_open()) << "missing fixture " << path;
  std::ostringstream buf;
  buf << in.rdbuf();
  EXPECT_EQ(ConferenceStatsToJson(stats), buf.str())
      << "conference results drifted from the pinned star-3 fixture";
}

TEST(ConferenceAdapterTest, CallIsExactlyAOneLegMeshConference) {
  const CallConfig call_config = FixtureCallConfig(Variant::kConverge);
  Call call(call_config);
  const CallStats via_call = call.Run();

  Conference conference(ToConferenceConfig(call_config));
  ASSERT_EQ(conference.num_legs(), 1u);
  EXPECT_EQ(conference.leg_from(0), 0);
  EXPECT_EQ(conference.leg_to(0), 1);
  const ConferenceStats via_conference = conference.Run();
  ASSERT_EQ(via_conference.legs.size(), 1u);
  EXPECT_EQ(CallStatsToJson(via_conference.legs[0].stats),
            CallStatsToJson(via_call));

  // Only participant 1 receives anything.
  ASSERT_EQ(via_conference.participants.size(), 2u);
  EXPECT_EQ(via_conference.participants[0].inbound_streams, 0);
  EXPECT_EQ(via_conference.participants[1].inbound_streams,
            call_config.num_streams);
}

// --- Mesh -------------------------------------------------------------------

TEST(ConferenceMeshTest, ThreePartyMeshAllParticipantsSendAndReceive) {
  Conference conference(MeshConfig(3, Duration::Seconds(6), 11));
  ASSERT_EQ(conference.num_legs(), 6u);
  const ConferenceStats stats = conference.Run();
  ASSERT_EQ(stats.legs.size(), 6u);
  ASSERT_EQ(stats.participants.size(), 3u);

  for (const ConferenceStats::Leg& leg : stats.legs) {
    EXPECT_NE(leg.from, leg.to);
    ASSERT_EQ(leg.stats.streams.size(), 1u);
    EXPECT_GT(leg.stats.streams[0].frames_decoded, 0)
        << "leg " << leg.from << "->" << leg.to << " decoded nothing";
  }
  for (const ConferenceStats::ParticipantQoe& p : stats.participants) {
    EXPECT_EQ(p.inbound_streams, 2);
    EXPECT_GT(p.avg_fps, 10.0) << "participant " << p.participant;
    EXPECT_GT(p.total_tput_mbps, 0.2) << "participant " << p.participant;
    EXPECT_LT(p.avg_e2e_ms, 500.0) << "participant " << p.participant;
  }
}

TEST(ConferenceMeshTest, SendOnlyAndReceiveOnlyRolesPruneLegs) {
  ConferenceConfig config = MeshConfig(3, Duration::Seconds(2), 4);
  config.participants[0].receives = false;  // pure publisher
  config.participants[2].sends = false;     // pure viewer
  Conference conference(config);
  // Senders {0, 1} x receivers {1, 2} minus self-legs: 0->1, 0->2, 1->2.
  ASSERT_EQ(conference.num_legs(), 3u);
  EXPECT_EQ(conference.leg_from(0), 0);
  EXPECT_EQ(conference.leg_to(0), 1);
  EXPECT_EQ(conference.leg_from(2), 1);
  EXPECT_EQ(conference.leg_to(2), 2);
}

TEST(ConferenceMeshTest, DeterministicAcrossJobsAndReruns) {
  std::vector<ConferenceConfig> configs;
  for (uint64_t seed = 1; seed <= 4; ++seed) {
    configs.push_back(MeshConfig(3, Duration::Seconds(4), seed));
  }
  const std::vector<ConferenceStats> serial = RunConferences(configs, 1);
  const std::vector<ConferenceStats> parallel = RunConferences(configs, 8);
  const std::vector<ConferenceStats> rerun = RunConferences(configs, 8);
  ASSERT_EQ(serial.size(), configs.size());
  for (size_t i = 0; i < configs.size(); ++i) {
    const std::string expected = ConferenceStatsToJson(serial[i]);
    EXPECT_EQ(ConferenceStatsToJson(parallel[i]), expected)
        << "jobs=8 diverged from jobs=1 at seed " << (i + 1);
    EXPECT_EQ(ConferenceStatsToJson(rerun[i]), expected)
        << "rerun diverged at seed " << (i + 1);
  }
}

// --- Star -------------------------------------------------------------------

TEST(ConferenceStarTest, HubForwardsEveryStreamToEverySubscriber) {
  Conference conference(StarConfig(3, Duration::Seconds(6), 21));
  ASSERT_EQ(conference.num_legs(), 6u);
  const ConferenceStats stats = conference.Run();

  for (const ConferenceStats::Leg& leg : stats.legs) {
    ASSERT_EQ(leg.stats.streams.size(), 1u);
    EXPECT_GT(leg.stats.streams[0].frames_decoded, 0)
        << "hub dropped leg " << leg.from << "->" << leg.to;
  }
  for (const ConferenceStats::ParticipantQoe& p : stats.participants) {
    EXPECT_EQ(p.inbound_streams, 2);
    EXPECT_GT(p.avg_fps, 10.0) << "participant " << p.participant;
    // Two store-and-forward hops: E2E must exceed the single uplink
    // propagation delay but stay conversational.
    EXPECT_GT(p.avg_e2e_ms, 35.0) << "participant " << p.participant;
    EXPECT_LT(p.avg_e2e_ms, 600.0) << "participant " << p.participant;
  }
}

// One publisher fanned out to three subscribers; receiver 3's downlink is
// constrained to `slow_mbps` aggregate across its two paths while the
// others get 10 Mbps. The hub must adapt receiver 3 independently.
ConferenceConfig ConstrainedStarConfig(double slow_mbps, Duration duration,
                                       uint64_t seed) {
  ConferenceConfig config;
  config.variant = Variant::kConverge;
  config.topology = Topology::kStar;
  config.participants.assign(4, ParticipantSpec{});
  config.participants[0].receives = false;
  for (int p = 1; p < 4; ++p) config.participants[p].sends = false;
  config.max_rate_per_stream = DataRate::MegabitsPerSec(3);
  config.duration = duration;
  config.seed = seed;
  config.paths_for_edge = [slow_mbps](int from, int to) {
    if (from == kHubId) {
      const double scale = to == 3 ? slow_mbps : 10.0;
      return std::vector<PathSpec>{StablePath("d0", 0.6 * scale, 15),
                                   StablePath("d1", 0.4 * scale, 25)};
    }
    return std::vector<PathSpec>{StablePath("u0", 6.0, 20),
                                 StablePath("u1", 4.0, 35)};
  };
  return config;
}

// The PR 5 acceptance scenario: one 1 Mbps downlink next to two 10 Mbps
// downlinks. The slow receiver must converge near its own capacity with a
// bounded hub queue, while the fast receivers stay within 5% of the QoE
// they get in an unconstrained run.
TEST(ConferenceStarTest, ConstrainedDownlinkConvergesAndIsolatesOthers) {
  const Duration duration = Duration::Seconds(12);
  Conference constrained(ConstrainedStarConfig(1.0, duration, 42));
  const ConferenceStats stats = constrained.Run();
  Conference unconstrained(ConstrainedStarConfig(10.0, duration, 42));
  const ConferenceStats baseline = unconstrained.Run();

  // Slow receiver: still decoding, at a rate near its 1 Mbps downlink.
  const ConferenceStats::ParticipantQoe& slow = stats.participants[3];
  EXPECT_GT(slow.avg_fps, 2.0);
  EXPECT_GT(slow.total_tput_mbps, 0.3);
  EXPECT_LT(slow.total_tput_mbps, 1.2);

  // The hub's controllers converged from the 3 Mbps aggregate start down
  // to roughly the slow downlink's capacity, thinning the excess, and the
  // drop policy kept the hub queue bounded.
  double slow_target_kbps = 0.0;
  int64_t slow_thinned = 0;
  ASSERT_FALSE(stats.downlinks.empty());
  for (const ConferenceStats::Downlink& d : stats.downlinks) {
    EXPECT_LT(d.forwarder.max_queue_delay_ms, 2000.0)
        << "receiver " << d.receiver << " path " << d.path;
    if (d.receiver == 3) {
      slow_target_kbps += d.target_kbps;
      slow_thinned += d.forwarder.frames_thinned;
    }
  }
  EXPECT_GT(slow_target_kbps, 300.0);
  EXPECT_LT(slow_target_kbps, 2000.0);
  EXPECT_GT(slow_thinned, 0);
  // Thinning broke dependency chains, so the hub asked the origin for
  // recovery keyframes.
  const HubForwarder* fwd = constrained.hub_forwarder(3);
  ASSERT_NE(fwd, nullptr);
  EXPECT_GT(fwd->stats(0).plis_relayed + fwd->stats(1).plis_relayed, 0);

  // Fast receivers: within 5% of their unconstrained QoE.
  for (int p = 1; p <= 2; ++p) {
    const double fps = stats.participants[static_cast<size_t>(p)].avg_fps;
    const double base =
        baseline.participants[static_cast<size_t>(p)].avg_fps;
    EXPECT_GT(base, 10.0) << "participant " << p;
    EXPECT_GT(fps, base * 0.95)
        << "participant " << p << " lost more than 5% QoE to a slow peer";
  }
}

// The PR 10 acceptance scenario: the same 1 Mbps vs 10 Mbps heterogeneous
// star, but with the publisher encoding three simulcast rungs and the hub
// doing per-receiver rung selection instead of whole-frame thinning. The
// slow receiver must lock to a lower rung at (essentially) full frame
// rate — no thinning-induced fps collapse — while the fast receivers stay
// within 5% of the source fps they get in an unconstrained run.
TEST(ConferenceStarTest, LayeredSlowDownlinkLocksLowerRungAtFullFps) {
  const Duration duration = Duration::Seconds(12);
  ConferenceConfig layered = ConstrainedStarConfig(1.0, duration, 42);
  layered.simulcast_rungs = 3;
  Conference constrained(layered);
  const ConferenceStats stats = constrained.Run();
  ConferenceConfig unconstrained_cfg = ConstrainedStarConfig(10.0, duration, 42);
  unconstrained_cfg.simulcast_rungs = 3;
  Conference unconstrained(unconstrained_cfg);
  const ConferenceStats baseline = unconstrained.Run();

  EXPECT_EQ(stats.simulcast_rungs, 3);

  // Slow receiver: locked to a lower rung, with switches committed and
  // unsubscribed rungs filtered (selection, not loss).
  int slow_rung = 0;
  int64_t slow_switches = 0;
  int64_t slow_filtered = 0;
  int64_t slow_thinned = 0;
  for (const ConferenceStats::Downlink& d : stats.downlinks) {
    if (d.receiver != 3) continue;
    slow_rung = std::max(slow_rung, d.selected_rung);
    slow_switches += d.forwarder.layer_switches;
    slow_filtered += d.forwarder.layer_packets_filtered;
    slow_thinned += d.forwarder.frames_thinned;
  }
  EXPECT_GE(slow_rung, 1);
  EXPECT_GE(slow_switches, 1);
  EXPECT_GT(slow_filtered, 0);

  // Full fps on the lower rung: within 5% of the receiver's own
  // unconstrained fps. This is the envelope whole-frame thinning cannot
  // meet (the PR 5 test above pins its fps collapse).
  const double slow_fps = stats.participants[3].avg_fps;
  const double slow_base = baseline.participants[3].avg_fps;
  EXPECT_GT(slow_base, 20.0);
  EXPECT_GT(slow_fps, slow_base * 0.95)
      << "rung selection failed to hold full fps on the slow downlink";
  // Selection converged: thinning (the overload backstop) stayed rare
  // instead of running continuously like the single-layer hub.
  EXPECT_LT(slow_thinned, 30);

  // Fast receivers: within 5% of their unconstrained QoE, on the top rung.
  for (int p = 1; p <= 2; ++p) {
    const double fps = stats.participants[static_cast<size_t>(p)].avg_fps;
    const double base = baseline.participants[static_cast<size_t>(p)].avg_fps;
    EXPECT_GT(base, 20.0) << "participant " << p;
    EXPECT_GT(fps, base * 0.95) << "participant " << p;
  }
  for (const ConferenceStats::Downlink& d : stats.downlinks) {
    if (d.receiver == 3) continue;
    EXPECT_EQ(d.selected_rung, 0) << "receiver " << d.receiver;
  }
}

// Regression for the ForwardsUpstream audit: downlink feedback must
// terminate at the hub. With heavily lossy downlinks and clean uplinks,
// the origin sender's per-path loss estimate (fed only by the hub's
// feedback endpoint) must stay clean while the hub's per-downlink
// controllers see the loss.
TEST(ConferenceStarTest, UplinkGccNeverSeesDownlinkFeedback) {
  ConferenceConfig config;
  config.variant = Variant::kConverge;
  config.topology = Topology::kStar;
  config.participants.assign(2, ParticipantSpec{});
  config.participants[0].receives = false;
  config.participants[1].sends = false;
  config.max_rate_per_stream = DataRate::MegabitsPerSec(2);
  config.duration = Duration::Seconds(8);
  config.seed = 5;
  config.paths_for_edge = [](int from, int) {
    if (from == kHubId) {
      return std::vector<PathSpec>{StablePath("d0", 6.0, 15, 0.15),
                                   StablePath("d1", 4.0, 25, 0.15)};
    }
    return std::vector<PathSpec>{StablePath("u0", 6.0, 20),
                                 StablePath("u1", 4.0, 35)};
  };
  Conference conference(config);
  ASSERT_EQ(conference.num_legs(), 1u);
  conference.Run();

  const Sender& origin = conference.leg_sender(0);
  const HubForwarder* fwd = conference.hub_forwarder(1);
  ASSERT_NE(fwd, nullptr);
  double hub_loss = 0.0;
  for (PathId path : {PathId{0}, PathId{1}}) {
    EXPECT_LT(origin.path_loss(path), 0.05)
        << "origin GCC saw downlink loss on path " << path;
    hub_loss = std::max(hub_loss, fwd->downlink_loss(path));
  }
  EXPECT_GT(hub_loss, 0.05)
      << "hub controllers never registered the downlink loss";
}

TEST(ConferenceStarTest, DeterministicAcrossJobs) {
  std::vector<ConferenceConfig> configs;
  for (uint64_t seed = 7; seed <= 9; ++seed) {
    configs.push_back(StarConfig(3, Duration::Seconds(4), seed));
  }
  const std::vector<ConferenceStats> serial = RunConferences(configs, 1);
  const std::vector<ConferenceStats> parallel = RunConferences(configs, 8);
  for (size_t i = 0; i < configs.size(); ++i) {
    EXPECT_EQ(ConferenceStatsToJson(parallel[i]),
              ConferenceStatsToJson(serial[i]));
  }
}

// --- Chaos: faulted 3-party mesh under invariants + tracing -----------------
// CI's chaos job runs this suite under ASan; the acceptance criterion is a
// deterministic faulted N-party run with zero invariant violations.

TEST(ConferenceChaosTest, FaultedThreePartyMeshRunsCleanUnderInvariants) {
  ScopedInvariants invariants;
  ConferenceConfig config = MeshConfig(3, Duration::Seconds(8), 31);
  // Scripted faults on the primary path of every directed edge, plus the
  // flight recorder, exactly as the chaos CI job drives 2-party calls.
  config.paths[0].fault_plan =
      MakeScenarioFaultPlan(Scenario::kWalking, config.seed);
  config.trace_capacity = 1 << 14;
  Conference conference(config);
  const ConferenceStats stats = conference.Run();

  EXPECT_EQ(InvariantRegistry::violation_count(), 0)
      << InvariantRegistry::Describe();
  ASSERT_NE(conference.trace(), nullptr);
  EXPECT_GT(conference.trace()->total_emitted(), 0);
  // The faulted path degrades QoE but every participant must still decode
  // video from both remotes.
  for (const ConferenceStats::Leg& leg : stats.legs) {
    ASSERT_EQ(leg.stats.streams.size(), 1u);
    EXPECT_GT(leg.stats.streams[0].frames_decoded, 0);
  }
  // Participant tags flow through routing + the event loop into the trace.
  std::set<int32_t> tagged;
  for (const TraceEvent& e : conference.trace()->Snapshot()) {
    if (e.participant >= 0) tagged.insert(e.participant);
  }
  EXPECT_EQ(tagged.size(), 3u)
      << "expected probe events attributed to all 3 participants";
}

// Star chaos: a mid-call rate cliff on ONE receiver's downlink. The hub
// must absorb it per-downlink — invariants clean, the hub queue bounded by
// the drop policy, and the receivers on healthy downlinks within 5% of an
// un-faulted run.
TEST(ConferenceChaosTest, StarRateCliffOnOneDownlinkIsolatesOthers) {
  auto make_config = [](bool faulted) {
    ConferenceConfig config = StarConfig(3, Duration::Seconds(8), 33);
    auto base_paths = config.paths_for_edge;
    config.paths_for_edge = [base_paths, faulted](int from, int to) {
      std::vector<PathSpec> paths = base_paths(from, to);
      if (faulted && from == kHubId && to == 2) {
        // Both of receiver 2's downlink paths collapse to 10% capacity
        // from t=2s to t=6s.
        for (PathSpec& p : paths) {
          p.fault_plan.Add(
              FaultEvent::RateCliff(Timestamp::Zero() + Duration::Seconds(2),
                                    Duration::Seconds(4), 0.1));
        }
      }
      return paths;
    };
    config.trace_capacity = 1 << 14;
    return config;
  };

  ScopedInvariants invariants;
  Conference faulted(make_config(true));
  const ConferenceStats stats = faulted.Run();
  EXPECT_EQ(InvariantRegistry::violation_count(), 0)
      << InvariantRegistry::Describe();
  Conference clean(make_config(false));
  const ConferenceStats baseline = clean.Run();
  EXPECT_EQ(InvariantRegistry::violation_count(), 0)
      << InvariantRegistry::Describe();

  // The faulted receiver degrades but keeps decoding, and the hub reacted
  // by thinning its downlink rather than letting the queue grow unbounded.
  EXPECT_GT(stats.participants[2].avg_fps, 1.0);
  int64_t faulted_thinned = 0;
  for (const ConferenceStats::Downlink& d : stats.downlinks) {
    EXPECT_LT(d.forwarder.max_queue_delay_ms, 2500.0)
        << "receiver " << d.receiver << " path " << d.path;
    if (d.receiver == 2) faulted_thinned += d.forwarder.frames_thinned;
  }
  EXPECT_GT(faulted_thinned, 0);

  // Receivers 0 and 1 ride healthy downlinks: within 5% of the un-faulted
  // run.
  for (int p = 0; p <= 1; ++p) {
    const double fps = stats.participants[static_cast<size_t>(p)].avg_fps;
    const double base =
        baseline.participants[static_cast<size_t>(p)].avg_fps;
    EXPECT_GT(base, 10.0) << "participant " << p;
    EXPECT_GT(fps, base * 0.95)
        << "participant " << p << " lost more than 5% QoE to the fault";
  }

  // The hub's probes made it into the flight recorder.
  ASSERT_NE(faulted.trace(), nullptr);
  bool hub_series = false;
  bool hub_gcc_series = false;
  for (const TraceEvent& e : faulted.trace()->Snapshot()) {
    if (std::string_view(e.component) == "hub") hub_series = true;
    if (std::string_view(e.component) == "hub_gcc") hub_gcc_series = true;
  }
  EXPECT_TRUE(hub_series);
  EXPECT_TRUE(hub_gcc_series);
}

}  // namespace
}  // namespace converge
