// Fleet driver contract tests: per-call results are a pure function of the
// call's own config — independent of shard count, quantum size, and churn
// offsets — and the incremental Conference interface the driver rides on
// (Start/AdvanceTo/Collect) reproduces Run() exactly.
#include <vector>

#include <gtest/gtest.h>

#include "net/fault_plan.h"
#include "session/conference.h"
#include "sim/fleet.h"

namespace converge {
namespace {

ConferenceConfig SmallCall(uint64_t seed) {
  ConferenceConfig config;
  config.variant = Variant::kConverge;
  config.topology = Topology::kMesh;
  config.participants.assign(2, ParticipantSpec{});
  config.max_rate_per_stream = DataRate::KilobitsPerSec(600);
  config.duration = Duration::Millis(800);
  config.seed = seed;

  PathSpec wifi;
  wifi.name = "wifi";
  wifi.capacity = BandwidthTrace::Constant(DataRate::MegabitsPerSec(3));
  wifi.prop_delay = Duration::Millis(20);
  PathSpec cell;
  cell.name = "cell";
  cell.capacity = BandwidthTrace::Constant(DataRate::MegabitsPerSec(2));
  cell.prop_delay = Duration::Millis(40);
  config.paths = {wifi, cell};
  return config;
}

FleetConfig SmallFleet(int calls) {
  FleetConfig config;
  for (int i = 0; i < calls; ++i) {
    config.calls.push_back(SmallCall(static_cast<uint64_t>(i + 1)));
  }
  return config;
}

// Exact comparison on purpose: the determinism contract is bit-identity,
// not tolerance-level agreement.
void ExpectIdentical(const std::vector<FleetCallSummary>& a,
                     const std::vector<FleetCallSummary>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].index, b[i].index) << "call " << i;
    EXPECT_EQ(a[i].avg_fps, b[i].avg_fps) << "call " << i;
    EXPECT_EQ(a[i].avg_freeze_ms, b[i].avg_freeze_ms) << "call " << i;
    EXPECT_EQ(a[i].avg_e2e_ms, b[i].avg_e2e_ms) << "call " << i;
    EXPECT_EQ(a[i].total_tput_mbps, b[i].total_tput_mbps) << "call " << i;
    EXPECT_EQ(a[i].frame_drops, b[i].frame_drops) << "call " << i;
    EXPECT_EQ(a[i].keyframe_requests, b[i].keyframe_requests) << "call " << i;
    EXPECT_EQ(a[i].media_packets_sent, b[i].media_packets_sent)
        << "call " << i;
    EXPECT_EQ(a[i].frames_encoded, b[i].frames_encoded) << "call " << i;
    EXPECT_EQ(a[i].rehomed, b[i].rehomed) << "call " << i;
  }
}

// A small cascaded call whose last hub fails mid-call, for driving the
// re-homing machinery through the fleet driver's incremental interface.
ConferenceConfig CascadeCall(uint64_t seed) {
  ConferenceConfig config;
  config.variant = Variant::kConverge;
  config.topology = Topology::kStar;
  config.participants.assign(4, ParticipantSpec{});
  config.max_rate_per_stream = DataRate::KilobitsPerSec(600);
  config.duration = Duration::Seconds(2);
  config.seed = seed;
  PathSpec wifi;
  wifi.name = "wifi";
  wifi.capacity = BandwidthTrace::Constant(DataRate::MegabitsPerSec(4));
  wifi.prop_delay = Duration::Millis(20);
  PathSpec cell;
  cell.name = "cell";
  cell.capacity = BandwidthTrace::Constant(DataRate::MegabitsPerSec(3));
  cell.prop_delay = Duration::Millis(40);
  config.paths = {wifi, cell};
  config.num_hubs = 2;  // round-robin homing: p % 2
  config.hub_fault_plans.resize(2);
  config.hub_fault_plans[1].Add(FaultEvent::Outage(
      Timestamp::Zero() + Duration::Millis(800), Duration::Millis(600)));
  return config;
}

TEST(FleetTest, PerCallResultsIndependentOfShardCount) {
  FleetConfig config = SmallFleet(5);
  config.shards = 1;
  const FleetResult serial = RunFleet(config);
  config.shards = 2;
  const FleetResult sharded = RunFleet(config);
  config.shards = 5;  // one call per shard
  const FleetResult max_sharded = RunFleet(config);

  EXPECT_EQ(serial.shards, 1);
  EXPECT_EQ(sharded.shards, 2);
  ExpectIdentical(serial.calls, sharded.calls);
  ExpectIdentical(serial.calls, max_sharded.calls);
  EXPECT_EQ(serial.max_concurrent, 5);
  EXPECT_GT(serial.calls[0].frames_encoded, 0);
}

TEST(FleetTest, PerCallResultsIndependentOfQuantum) {
  FleetConfig config = SmallFleet(3);
  config.shards = 1;
  config.quantum = Duration::Millis(250);
  const FleetResult coarse = RunFleet(config);
  config.quantum = Duration::Millis(40);  // duration not a multiple
  const FleetResult fine = RunFleet(config);
  ExpectIdentical(coarse.calls, fine.calls);
}

TEST(FleetTest, ChurnOffsetsDoNotChangePerCallResults) {
  FleetConfig config = SmallFleet(4);
  config.shards = 2;
  const FleetResult together = RunFleet(config);

  // Staggered joins: each call still simulates its own [0, duration) span.
  config.start_offsets = {Duration::Zero(), Duration::Millis(300),
                          Duration::Millis(800), Duration::Millis(1600)};
  const FleetResult staggered = RunFleet(config);

  ExpectIdentical(together.calls, staggered.calls);
  EXPECT_EQ(together.max_concurrent, 4);
  // Windows: [0,800), [300,1100), [800,1600), [1600,2400). Call 0 leaves at
  // 800 ms exactly as call 2 joins (leave-before-join: no overlap), so the
  // peak is two concurrent calls.
  EXPECT_EQ(staggered.max_concurrent, 2);
  EXPECT_EQ(together.sim_seconds, staggered.sim_seconds);
}

TEST(FleetTest, IncrementalInterfaceMatchesRun) {
  const ConferenceConfig config = SmallCall(/*seed=*/9);

  Conference whole(config);
  const ConferenceStats expected = whole.Run();

  Conference sliced(config);
  sliced.Start();
  // Uneven quanta, including a zero-length advance and a final boundary
  // exactly at the end.
  const int64_t slices_ms[] = {100, 100, 350, 350, 600, 800};
  for (int64_t ms : slices_ms) {
    sliced.AdvanceTo(Timestamp::Zero() + Duration::Millis(ms));
  }
  const ConferenceStats actual = sliced.Collect();

  ASSERT_EQ(expected.legs.size(), actual.legs.size());
  for (size_t i = 0; i < expected.legs.size(); ++i) {
    const CallStats& e = expected.legs[i].stats;
    const CallStats& a = actual.legs[i].stats;
    EXPECT_EQ(e.media_packets_sent, a.media_packets_sent) << "leg " << i;
    EXPECT_EQ(e.frames_encoded, a.frames_encoded) << "leg " << i;
    EXPECT_EQ(e.total_frame_drops, a.total_frame_drops) << "leg " << i;
    EXPECT_EQ(e.AvgFps(), a.AvgFps()) << "leg " << i;
    EXPECT_EQ(e.AvgE2eMs(), a.AvgE2eMs()) << "leg " << i;
    EXPECT_EQ(e.TotalTputMbps(), a.TotalTputMbps()) << "leg " << i;
  }
  ASSERT_EQ(expected.participants.size(), actual.participants.size());
  for (size_t i = 0; i < expected.participants.size(); ++i) {
    EXPECT_EQ(expected.participants[i].avg_fps, actual.participants[i].avg_fps)
        << "participant " << i;
  }
}

// Cascaded calls with mid-call hub failover keep the fleet determinism
// contract: the per-call summary (including the rehomed count) is identical
// for any shard count, and the re-homing actually happened in every call.
TEST(FleetTest, CascadeFailoverCallsAreShardIndependent) {
  FleetConfig config;
  for (int i = 0; i < 4; ++i) {
    config.calls.push_back(CascadeCall(static_cast<uint64_t>(i + 1)));
  }
  config.shards = 1;
  const FleetResult serial = RunFleet(config);
  config.shards = 4;
  const FleetResult sharded = RunFleet(config);
  ExpectIdentical(serial.calls, sharded.calls);
  for (const FleetCallSummary& c : serial.calls) {
    // 4 participants over 2 hubs: hub 1's failure re-homes its 2.
    EXPECT_EQ(c.rehomed, 2) << "call " << c.index;
    EXPECT_GT(c.frames_encoded, 0) << "call " << c.index;
  }
}

}  // namespace
}  // namespace converge
