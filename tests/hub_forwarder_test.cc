// HubForwarder unit coverage: hub-owned egress sequence spaces, the
// frame-aware drop policy (oldest-first, keyframe-protected, dependency
// gating with PLI relay), local NACK answering from hub history, and the
// per-downlink congestion loop in DownlinkCc.
#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "cc/downlink_cc.h"
#include "session/hub_forwarder.h"
#include "sim/event_loop.h"

namespace converge {
namespace {

struct Delivered {
  int leg = 0;
  PathId path = 0;
  RtpPacket packet;
};

struct Relayed {
  int leg = 0;
  uint32_t ssrc = 0;
  PathId path = 0;
};

struct Harness {
  explicit Harness(HubForwarder::Config config, std::vector<PathId> paths = {0})
      : forwarder(&loop, config, paths,
                  [this](int leg, PathId path, RtpPacket packet) {
                    delivered.push_back({leg, path, std::move(packet)});
                  },
                  [this](int leg, uint32_t ssrc, PathId path) {
                    plis.push_back({leg, ssrc, path});
                  }) {}

  EventLoop loop;
  HubForwarder forwarder;
  std::vector<Delivered> delivered;
  std::vector<Relayed> plis;
};

HubForwarder::Config FastConfig(double start_mbps) {
  HubForwarder::Config config;
  config.cc.controller.start_rate = DataRate::MegabitsPerSec(start_mbps);
  config.cc.controller.max_rate = DataRate::MegabitsPerSec(start_mbps * 4);
  return config;
}

RtpPacket MediaPacket(uint32_t ssrc, uint16_t seq, int64_t frame_id,
                      FrameKind kind, int64_t bytes = 1000,
                      int stream = 0) {
  RtpPacket p;
  p.ssrc = ssrc;
  p.seq = seq;
  p.kind = PayloadKind::kMedia;
  p.frame_kind = kind;
  p.stream_id = stream;
  p.frame_id = frame_id;
  p.payload_bytes = bytes;
  return p;
}

TEST(HubForwarderTest, StampsGapFreeSequencesPerLegAndForwards) {
  Harness h(FastConfig(10.0));
  // Two legs interleaved onto the same path: each must get its own
  // contiguous mp_seq / mp_transport_seq space.
  uint16_t seq = 0;
  for (int64_t frame = 0; frame < 5; ++frame) {
    const FrameKind kind = frame == 0 ? FrameKind::kKey : FrameKind::kDelta;
    h.forwarder.OnMediaFromUplink(0, 0, MediaPacket(0x10, seq++, frame, kind));
    h.forwarder.OnMediaFromUplink(2, 0, MediaPacket(0x20, seq++, frame, kind));
  }
  h.loop.RunUntil(Timestamp::Zero() + Duration::Millis(100));

  ASSERT_EQ(h.delivered.size(), 10u);
  std::map<int, uint16_t> next_seq;
  for (const Delivered& d : h.delivered) {
    auto it = next_seq.find(d.leg);
    if (it == next_seq.end()) {
      EXPECT_EQ(d.packet.mp_seq, 0) << "leg " << d.leg;
      EXPECT_EQ(d.packet.mp_transport_seq, 0) << "leg " << d.leg;
      next_seq[d.leg] = 1;
    } else {
      EXPECT_EQ(d.packet.mp_seq, it->second) << "leg " << d.leg;
      ++it->second;
    }
  }
  EXPECT_EQ(h.forwarder.stats(0).packets_forwarded, 10);
  EXPECT_EQ(h.forwarder.stats(0).frames_thinned, 0);
}

TEST(HubForwarderTest, ThinsDeltasWhenBackloggedAndRelaysPli) {
  // 200 kbps downlink: a 4 Mbps inflow must be thinned almost entirely.
  HubForwarder::Config config = FastConfig(0.2);
  Harness h(config);
  uint16_t seq = 0;
  int64_t frame = 0;
  // One keyframe, then a long run of deltas at ~4 Mbps (30 fps x 16.6 KB).
  for (int tick = 0; tick < 30; ++tick) {
    const FrameKind kind = frame == 0 ? FrameKind::kKey : FrameKind::kDelta;
    for (int j = 0; j < 14; ++j) {
      h.forwarder.OnMediaFromUplink(0, 0,
                                    MediaPacket(0x10, seq++, frame, kind, 1200));
    }
    ++frame;
    h.loop.RunUntil(h.loop.now() + Duration::Millis(33));
  }
  const HubForwarder::DownlinkStats& stats = h.forwarder.stats(0);
  EXPECT_GT(stats.frames_thinned, 0);
  EXPECT_GT(stats.packets_dropped, 0);
  ASSERT_FALSE(h.plis.empty());
  EXPECT_EQ(h.plis[0].leg, 0);
  EXPECT_EQ(h.plis[0].ssrc, 0x10u);
  // PLI relays are debounced, so far fewer PLIs than thinned frames.
  EXPECT_LT(static_cast<int64_t>(h.plis.size()), stats.frames_thinned);
  // The queue stayed bounded by the drop policy.
  EXPECT_LT(stats.max_queue_delay_ms, 1000.0);
}

TEST(HubForwarderTest, GateReopensOnKeyframe) {
  HubForwarder::Config config = FastConfig(10.0);
  // Thin aggressively: anything queued at all triggers thinning.
  config.thin_queue_delay = Duration::Micros(-1);
  Harness h(config);
  h.forwarder.OnMediaFromUplink(0, 0,
                                MediaPacket(0x10, 0, 0, FrameKind::kKey));
  // Backlogged (nothing processed yet): this delta is thinned, closing
  // the gate...
  h.forwarder.OnMediaFromUplink(0, 0,
                                MediaPacket(0x10, 1, 1, FrameKind::kDelta));
  // ...and a later delta is dropped by the closed gate even though the
  // instantaneous decision would now be re-evaluated.
  h.forwarder.OnMediaFromUplink(0, 0,
                                MediaPacket(0x10, 2, 2, FrameKind::kDelta));
  // A keyframe reopens the chain; the following delta is admitted.
  h.forwarder.OnMediaFromUplink(0, 0,
                                MediaPacket(0x10, 3, 3, FrameKind::kKey));
  h.loop.RunUntil(Timestamp::Zero() + Duration::Millis(200));

  EXPECT_EQ(h.forwarder.stats(0).frames_thinned, 2);
  ASSERT_EQ(h.delivered.size(), 2u);
  EXPECT_EQ(h.delivered[0].packet.frame_id, 0);
  EXPECT_EQ(h.delivered[1].packet.frame_id, 3);
}

RtpPacket LayeredPacket(uint32_t ssrc, uint16_t seq, int64_t frame_id,
                        FrameKind kind, int spatial, int num_spatial,
                        int64_t bytes) {
  RtpPacket p = MediaPacket(ssrc, seq, frame_id, kind, bytes);
  p.spatial_id = static_cast<uint8_t>(spatial);
  p.num_spatial = static_cast<uint8_t>(num_spatial);
  return p;
}

TEST(HubForwarderTest, LayeredFiltersUnsubscribedRungsWithoutSeqGaps) {
  HubForwarder::Config config = FastConfig(10.0);
  config.layers.enabled = true;
  config.layers.alr_padding = false;  // pin the egress sequence exactly
  Harness h(config);
  // Two rungs per capture, plenty of downlink budget: the default rung-0
  // subscription holds, rung 1 is filtered at ingress, and the hub-stamped
  // egress sequence space stays gap-free (filtering is selection, not
  // loss — the receiver must never see anything to NACK-chase).
  uint16_t seq = 0;
  for (int64_t frame = 0; frame < 10; ++frame) {
    const FrameKind kind = frame == 0 ? FrameKind::kKey : FrameKind::kDelta;
    h.forwarder.OnMediaFromUplink(
        0, 0, LayeredPacket(0x10, seq++, frame, kind, 0, 2, 1000));
    h.forwarder.OnMediaFromUplink(
        0, 0, LayeredPacket(0x10, seq++, frame, kind, 1, 2, 300));
    h.loop.RunUntil(h.loop.now() + Duration::Millis(33));
  }
  h.loop.RunUntil(h.loop.now() + Duration::Millis(200));

  ASSERT_EQ(h.delivered.size(), 10u);
  for (size_t i = 0; i < h.delivered.size(); ++i) {
    EXPECT_EQ(h.delivered[i].packet.spatial_id, 0);
    EXPECT_EQ(h.delivered[i].packet.frame_id, static_cast<int64_t>(i));
    EXPECT_EQ(h.delivered[i].packet.mp_seq, static_cast<uint16_t>(i));
  }
  const HubForwarder::DownlinkStats& stats = h.forwarder.stats(0);
  EXPECT_EQ(stats.layer_packets_filtered, 10);
  EXPECT_EQ(stats.frames_thinned, 0);
  EXPECT_EQ(stats.packets_dropped, 0);
  EXPECT_EQ(h.forwarder.selected_rung(0, 0), 0);
  EXPECT_EQ(h.forwarder.max_selected_rung(), 0);
}

TEST(HubForwarderTest, LayeredDownswitchCommitsAtKeyframeWithFullFps) {
  // 500 kbps downlink, rung 0 at ~700 kbps, rung 1 at ~96 kbps: the
  // selection engine must ask for a downswitch (debounced PLI), commit it
  // on the next keyframe, and keep EVERY frame_id flowing — no
  // whole-frame thinning, which is the whole point of rung selection.
  HubForwarder::Config config = FastConfig(0.5);
  config.layers.enabled = true;
  config.layers.alr_padding = false;  // pin the egress sequence exactly
  Harness h(config);
  uint16_t seq = 0;
  int64_t frame = 0;
  for (int tick = 0; tick < 30; ++tick) {
    // The hub's switch PLI reaches the origin, which keys ALL rungs of a
    // later capture; model that with a keyframe once the PLI arrives.
    const FrameKind kind = (frame == 0 || (frame == 10 && !h.plis.empty()))
                               ? FrameKind::kKey
                               : FrameKind::kDelta;
    h.forwarder.OnMediaFromUplink(
        0, 0, LayeredPacket(0x10, seq++, frame, kind, 0, 2, 2917));
    h.forwarder.OnMediaFromUplink(
        0, 0, LayeredPacket(0x10, seq++, frame, kind, 1, 2, 400));
    ++frame;
    h.loop.RunUntil(h.loop.now() + Duration::Millis(33));
  }
  h.loop.RunUntil(h.loop.now() + Duration::Seconds(2));

  // The switch was requested upstream and committed exactly once.
  ASSERT_FALSE(h.plis.empty());
  const HubForwarder::DownlinkStats& stats = h.forwarder.stats(0);
  EXPECT_EQ(stats.layer_switches, 1);
  EXPECT_EQ(h.forwarder.selected_rung(0, 0), 1);
  EXPECT_EQ(h.forwarder.max_selected_rung(), 1);

  // Full fps: every frame_id went downstream exactly once, rung 0 before
  // the commit and rung 1 from the keyframe on; nothing was thinned.
  EXPECT_EQ(stats.frames_thinned, 0);
  ASSERT_EQ(h.delivered.size(), 30u);
  for (size_t i = 0; i < h.delivered.size(); ++i) {
    EXPECT_EQ(h.delivered[i].packet.frame_id, static_cast<int64_t>(i));
    EXPECT_EQ(h.delivered[i].packet.mp_seq, static_cast<uint16_t>(i));
    EXPECT_EQ(h.delivered[i].packet.spatial_id, i < 10 ? 0 : 1);
  }
}

TEST(HubForwarderTest, LayeredUpswitchIsDwellGatedAndKeyframeCommitted) {
  HubForwarder::Config config = FastConfig(0.5);
  config.layers.enabled = true;
  config.layers.alr_padding = false;  // delivered[] must be media only
  config.layers.min_dwell = Duration::Seconds(1);
  Harness h(config);
  uint16_t seq = 0;
  int64_t frame = 0;
  int64_t switches_seen = 0;
  // Phase A: rung 0 overruns -> downswitch. Phase B: rung 0 collapses to
  // ~60 kbps -> upswitch, but only after the blended estimate decays AND
  // the 1 s dwell passes. Periodic keyframes give pending switches their
  // commit points.
  for (int tick = 0; tick < 120; ++tick) {
    const bool phase_a = tick < 15;
    const FrameKind kind =
        (frame % 15 == 0) ? FrameKind::kKey : FrameKind::kDelta;
    h.forwarder.OnMediaFromUplink(
        0, 0,
        LayeredPacket(0x10, seq++, frame, kind, 0, 2, phase_a ? 2917 : 250));
    h.forwarder.OnMediaFromUplink(
        0, 0, LayeredPacket(0x10, seq++, frame, kind, 1, 2, 400));
    ++frame;
    if (h.forwarder.stats(0).layer_switches > switches_seen) {
      switches_seen = h.forwarder.stats(0).layer_switches;
      if (switches_seen == 1) {
        // Downswitch committed; it must NOT bounce back before the dwell.
        EXPECT_EQ(h.forwarder.selected_rung(0, 0), 1);
      }
    }
    h.loop.RunUntil(h.loop.now() + Duration::Millis(33));
  }
  h.loop.RunUntil(h.loop.now() + Duration::Seconds(1));

  const HubForwarder::DownlinkStats& stats = h.forwarder.stats(0);
  EXPECT_EQ(stats.layer_switches, 2);
  EXPECT_EQ(h.forwarder.selected_rung(0, 0), 0);
  EXPECT_EQ(stats.frames_thinned, 0);
  // Every capture still went downstream exactly once.
  ASSERT_EQ(h.delivered.size(), 120u);
  for (size_t i = 0; i < h.delivered.size(); ++i) {
    EXPECT_EQ(h.delivered[i].packet.frame_id, static_cast<int64_t>(i));
  }
}

TEST(HubForwarderTest, LayeredAlrPaddingFillsToTargetWithProbeDuplicates) {
  // Forwarding only the selected rung leaves the path application-limited;
  // with padding on, the hub fills up to the CC target with kProbe
  // duplicates that share the gap-free egress sequence space (receivers
  // ack them in transport feedback but never assemble them).
  HubForwarder::Config config = FastConfig(1.0);
  config.layers.enabled = true;  // alr_padding defaults to true
  // Shrink the warm-up so this 2 s capture also pins it: no probes until
  // the path has carried media for ~10 frames.
  config.layers.padding_warmup = Duration::Millis(330);
  Harness h(config);
  uint16_t seq = 0;
  for (int64_t frame = 0; frame < 60; ++frame) {
    const FrameKind kind = frame == 0 ? FrameKind::kKey : FrameKind::kDelta;
    // ~120 kbps of media against a 1 Mbps target: heavily app-limited.
    h.forwarder.OnMediaFromUplink(
        0, 0, LayeredPacket(0x10, seq++, frame, kind, 0, 2, 500));
    h.forwarder.OnMediaFromUplink(
        0, 0, LayeredPacket(0x10, seq++, frame, kind, 1, 2, 200));
    h.loop.RunUntil(h.loop.now() + Duration::Millis(33));
  }

  int64_t media = 0, probes = 0;
  uint16_t expect_seq = 0;
  for (const Delivered& d : h.delivered) {
    EXPECT_EQ(d.packet.mp_seq, expect_seq++);  // padding shares the space
    if (d.packet.kind == PayloadKind::kProbe) {
      EXPECT_TRUE(d.packet.is_probe_duplicate);
      // Warm-up: padding must not start before the path has carried
      // media for padding_warmup (~10 frames here).
      EXPECT_GE(media, 10) << "probe before the warm-up elapsed";
      ++probes;
    } else {
      EXPECT_FALSE(d.packet.is_probe_duplicate);
      ++media;
    }
  }
  EXPECT_EQ(media, 60);  // one rung-0 packet per capture, nothing thinned
  EXPECT_GT(probes, 100);  // the ~880 kbps gap is real padding on the wire
  const HubForwarder::DownlinkStats& stats = h.forwarder.stats(0);
  EXPECT_EQ(stats.padding_packets, probes);
  EXPECT_EQ(stats.packets_forwarded, media);  // padding is not "forwarded"
}

TEST(HubForwarderTest, EvictionIsOldestFirstAndKeyframeProtected) {
  // Rate so low nothing drains: eviction policy alone shapes the queue.
  HubForwarder::Config config;
  config.cc.controller.start_rate = DataRate::KilobitsPerSec(50);
  config.cc.controller.min_rate = DataRate::KilobitsPerSec(50);
  config.cc.controller.max_rate = DataRate::KilobitsPerSec(100);
  config.thin_queue_delay = Duration::Seconds(1000);  // ingress never thins
  config.drop_queue_delay = Duration::Millis(250);
  Harness h(config);
  // Keyframe (protected) + two delta frames; at 50 kbps even one packet
  // exceeds the drop threshold.
  h.forwarder.OnMediaFromUplink(0, 0,
                                MediaPacket(0x10, 0, 0, FrameKind::kKey, 800));
  h.forwarder.OnMediaFromUplink(
      0, 0, MediaPacket(0x10, 1, 1, FrameKind::kDelta, 800));
  h.forwarder.OnMediaFromUplink(
      0, 0, MediaPacket(0x10, 2, 2, FrameKind::kDelta, 800));
  h.loop.RunUntil(Timestamp::Zero() + Duration::Millis(20));

  const HubForwarder::DownlinkStats& stats = h.forwarder.stats(0);
  // Both deltas go (frame 1 is oldest unprotected; frame 2 depends on it);
  // the keyframe survives and eventually drains.
  EXPECT_EQ(stats.frames_evicted, 2);
  for (const Delivered& d : h.delivered) {
    EXPECT_EQ(d.packet.frame_kind, FrameKind::kKey);
  }
}

TEST(HubForwarderTest, AnswersNackFromHubHistoryWithFreshStamps) {
  Harness h(FastConfig(10.0));
  for (int64_t frame = 0; frame < 3; ++frame) {
    const FrameKind kind = frame == 0 ? FrameKind::kKey : FrameKind::kDelta;
    h.forwarder.OnMediaFromUplink(
        0, 0, MediaPacket(0x10, static_cast<uint16_t>(frame), frame, kind));
  }
  h.loop.RunUntil(Timestamp::Zero() + Duration::Millis(50));
  ASSERT_EQ(h.delivered.size(), 3u);

  // The receiver reports a hole at hub-stamped mp_seq 1 on path 0.
  RtcpPacket nack;
  nack.path_id = 0;
  nack.payload = Nack{0, {1}};
  EXPECT_TRUE(h.forwarder.OnReceiverRtcp(0, 0, nack));
  // A duplicate (receivers duplicate critical feedback per path) is
  // de-duplicated and answered only once.
  EXPECT_TRUE(h.forwarder.OnReceiverRtcp(0, 0, nack));
  // A NACK for a sequence the hub never stamped is ignored.
  RtcpPacket unknown;
  unknown.path_id = 0;
  unknown.payload = Nack{0, {999}};
  EXPECT_TRUE(h.forwarder.OnReceiverRtcp(0, 0, unknown));
  h.loop.RunUntil(h.loop.now() + Duration::Millis(50));

  ASSERT_EQ(h.delivered.size(), 4u);
  const RtpPacket& rtx = h.delivered.back().packet;
  EXPECT_TRUE(rtx.via_rtx);
  EXPECT_EQ(rtx.rtx_for_path, 0);
  EXPECT_EQ(rtx.rtx_for_mp_seq, 1);
  // The retransmission keeps the per-path wire order sequential: it rides
  // the next fresh mp_seq, not the old one.
  EXPECT_EQ(rtx.mp_seq, 3);
  EXPECT_EQ(h.forwarder.stats(0).rtx_answered, 1);
}

TEST(HubForwarderTest, ConsumesDownlinkFeedbackKinds) {
  Harness h(FastConfig(10.0));
  RtcpPacket fb;
  fb.path_id = 0;
  fb.payload = TransportFeedback{};
  EXPECT_TRUE(h.forwarder.OnReceiverRtcp(0, 0, fb));
  RtcpPacket rr;
  rr.path_id = 0;
  rr.payload = ReceiverReport{};
  EXPECT_TRUE(h.forwarder.OnReceiverRtcp(0, 0, rr));
  // End-to-end signals are NOT consumed: the conference relays them.
  RtcpPacket pli;
  pli.path_id = 0;
  pli.payload = KeyframeRequest{0x10};
  EXPECT_FALSE(h.forwarder.OnReceiverRtcp(0, 0, pli));
  RtcpPacket qoe;
  qoe.path_id = 0;
  qoe.payload = QoeFeedback{};
  EXPECT_FALSE(h.forwarder.OnReceiverRtcp(0, 0, qoe));
}

TEST(DownlinkCcTest, LossyFeedbackDropsTargetBelowStart) {
  DownlinkCc::Config config;
  config.controller.start_rate = DataRate::MegabitsPerSec(5);
  config.controller.max_rate = DataRate::MegabitsPerSec(10);
  DownlinkCc cc(config);
  const DataRate start = cc.target_rate();

  // 2 s of 50 ms feedback batches with 30% loss and growing delay.
  Timestamp now = Timestamp::Zero();
  int64_t seq = 0;
  for (int batch = 0; batch < 40; ++batch) {
    TransportFeedback fb;
    for (int i = 0; i < 20; ++i) {
      const Timestamp sent = now + Duration::Millis(i * 2);
      cc.OnPacketSent(/*leg=*/0, seq, sent, 1200);
      TransportFeedback::Arrival a;
      a.mp_transport_seq = seq;
      // Delay grows with the batch index: a building queue.
      a.recv_time = i % 3 == 0 ? Timestamp::MinusInfinity()
                               : sent + Duration::Millis(20 + batch * 2);
      fb.arrivals.push_back(a);
      ++seq;
    }
    now = now + Duration::Millis(50);
    cc.OnTransportFeedback(/*leg=*/0, fb, now);
  }
  EXPECT_LT(cc.target_rate().bps(), start.bps() / 2);
  EXPECT_GT(cc.packets_lost(), 0);
  EXPECT_GT(cc.packets_acked(), 0);
}

TEST(DownlinkCcTest, SkipsArrivalsOutsideSentHistory) {
  DownlinkCc cc(DownlinkCc::Config{});
  TransportFeedback fb;
  TransportFeedback::Arrival a;
  a.mp_transport_seq = 7;  // never registered via OnPacketSent
  a.recv_time = Timestamp::Zero() + Duration::Millis(10);
  fb.arrivals.push_back(a);
  cc.OnTransportFeedback(0, fb, Timestamp::Zero() + Duration::Millis(20));
  EXPECT_EQ(cc.feedback_batches(), 0);
  EXPECT_EQ(cc.packets_acked(), 0);
}

}  // namespace
}  // namespace converge
