// HubForwarder unit coverage: hub-owned egress sequence spaces, the
// frame-aware drop policy (oldest-first, keyframe-protected, dependency
// gating with PLI relay), local NACK answering from hub history, and the
// per-downlink congestion loop in DownlinkCc.
#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "cc/downlink_cc.h"
#include "session/hub_forwarder.h"
#include "sim/event_loop.h"

namespace converge {
namespace {

struct Delivered {
  int leg = 0;
  PathId path = 0;
  RtpPacket packet;
};

struct Relayed {
  int leg = 0;
  uint32_t ssrc = 0;
  PathId path = 0;
};

struct Harness {
  explicit Harness(HubForwarder::Config config, std::vector<PathId> paths = {0})
      : forwarder(&loop, config, paths,
                  [this](int leg, PathId path, RtpPacket packet) {
                    delivered.push_back({leg, path, std::move(packet)});
                  },
                  [this](int leg, uint32_t ssrc, PathId path) {
                    plis.push_back({leg, ssrc, path});
                  }) {}

  EventLoop loop;
  HubForwarder forwarder;
  std::vector<Delivered> delivered;
  std::vector<Relayed> plis;
};

HubForwarder::Config FastConfig(double start_mbps) {
  HubForwarder::Config config;
  config.cc.controller.start_rate = DataRate::MegabitsPerSec(start_mbps);
  config.cc.controller.max_rate = DataRate::MegabitsPerSec(start_mbps * 4);
  return config;
}

RtpPacket MediaPacket(uint32_t ssrc, uint16_t seq, int64_t frame_id,
                      FrameKind kind, int64_t bytes = 1000,
                      int stream = 0) {
  RtpPacket p;
  p.ssrc = ssrc;
  p.seq = seq;
  p.kind = PayloadKind::kMedia;
  p.frame_kind = kind;
  p.stream_id = stream;
  p.frame_id = frame_id;
  p.payload_bytes = bytes;
  return p;
}

TEST(HubForwarderTest, StampsGapFreeSequencesPerLegAndForwards) {
  Harness h(FastConfig(10.0));
  // Two legs interleaved onto the same path: each must get its own
  // contiguous mp_seq / mp_transport_seq space.
  uint16_t seq = 0;
  for (int64_t frame = 0; frame < 5; ++frame) {
    const FrameKind kind = frame == 0 ? FrameKind::kKey : FrameKind::kDelta;
    h.forwarder.OnMediaFromUplink(0, 0, MediaPacket(0x10, seq++, frame, kind));
    h.forwarder.OnMediaFromUplink(2, 0, MediaPacket(0x20, seq++, frame, kind));
  }
  h.loop.RunUntil(Timestamp::Zero() + Duration::Millis(100));

  ASSERT_EQ(h.delivered.size(), 10u);
  std::map<int, uint16_t> next_seq;
  for (const Delivered& d : h.delivered) {
    auto it = next_seq.find(d.leg);
    if (it == next_seq.end()) {
      EXPECT_EQ(d.packet.mp_seq, 0) << "leg " << d.leg;
      EXPECT_EQ(d.packet.mp_transport_seq, 0) << "leg " << d.leg;
      next_seq[d.leg] = 1;
    } else {
      EXPECT_EQ(d.packet.mp_seq, it->second) << "leg " << d.leg;
      ++it->second;
    }
  }
  EXPECT_EQ(h.forwarder.stats(0).packets_forwarded, 10);
  EXPECT_EQ(h.forwarder.stats(0).frames_thinned, 0);
}

TEST(HubForwarderTest, ThinsDeltasWhenBackloggedAndRelaysPli) {
  // 200 kbps downlink: a 4 Mbps inflow must be thinned almost entirely.
  HubForwarder::Config config = FastConfig(0.2);
  Harness h(config);
  uint16_t seq = 0;
  int64_t frame = 0;
  // One keyframe, then a long run of deltas at ~4 Mbps (30 fps x 16.6 KB).
  for (int tick = 0; tick < 30; ++tick) {
    const FrameKind kind = frame == 0 ? FrameKind::kKey : FrameKind::kDelta;
    for (int j = 0; j < 14; ++j) {
      h.forwarder.OnMediaFromUplink(0, 0,
                                    MediaPacket(0x10, seq++, frame, kind, 1200));
    }
    ++frame;
    h.loop.RunUntil(h.loop.now() + Duration::Millis(33));
  }
  const HubForwarder::DownlinkStats& stats = h.forwarder.stats(0);
  EXPECT_GT(stats.frames_thinned, 0);
  EXPECT_GT(stats.packets_dropped, 0);
  ASSERT_FALSE(h.plis.empty());
  EXPECT_EQ(h.plis[0].leg, 0);
  EXPECT_EQ(h.plis[0].ssrc, 0x10u);
  // PLI relays are debounced, so far fewer PLIs than thinned frames.
  EXPECT_LT(static_cast<int64_t>(h.plis.size()), stats.frames_thinned);
  // The queue stayed bounded by the drop policy.
  EXPECT_LT(stats.max_queue_delay_ms, 1000.0);
}

TEST(HubForwarderTest, GateReopensOnKeyframe) {
  HubForwarder::Config config = FastConfig(10.0);
  // Thin aggressively: anything queued at all triggers thinning.
  config.thin_queue_delay = Duration::Micros(-1);
  Harness h(config);
  h.forwarder.OnMediaFromUplink(0, 0,
                                MediaPacket(0x10, 0, 0, FrameKind::kKey));
  // Backlogged (nothing processed yet): this delta is thinned, closing
  // the gate...
  h.forwarder.OnMediaFromUplink(0, 0,
                                MediaPacket(0x10, 1, 1, FrameKind::kDelta));
  // ...and a later delta is dropped by the closed gate even though the
  // instantaneous decision would now be re-evaluated.
  h.forwarder.OnMediaFromUplink(0, 0,
                                MediaPacket(0x10, 2, 2, FrameKind::kDelta));
  // A keyframe reopens the chain; the following delta is admitted.
  h.forwarder.OnMediaFromUplink(0, 0,
                                MediaPacket(0x10, 3, 3, FrameKind::kKey));
  h.loop.RunUntil(Timestamp::Zero() + Duration::Millis(200));

  EXPECT_EQ(h.forwarder.stats(0).frames_thinned, 2);
  ASSERT_EQ(h.delivered.size(), 2u);
  EXPECT_EQ(h.delivered[0].packet.frame_id, 0);
  EXPECT_EQ(h.delivered[1].packet.frame_id, 3);
}

TEST(HubForwarderTest, EvictionIsOldestFirstAndKeyframeProtected) {
  // Rate so low nothing drains: eviction policy alone shapes the queue.
  HubForwarder::Config config;
  config.cc.controller.start_rate = DataRate::KilobitsPerSec(50);
  config.cc.controller.min_rate = DataRate::KilobitsPerSec(50);
  config.cc.controller.max_rate = DataRate::KilobitsPerSec(100);
  config.thin_queue_delay = Duration::Seconds(1000);  // ingress never thins
  config.drop_queue_delay = Duration::Millis(250);
  Harness h(config);
  // Keyframe (protected) + two delta frames; at 50 kbps even one packet
  // exceeds the drop threshold.
  h.forwarder.OnMediaFromUplink(0, 0,
                                MediaPacket(0x10, 0, 0, FrameKind::kKey, 800));
  h.forwarder.OnMediaFromUplink(
      0, 0, MediaPacket(0x10, 1, 1, FrameKind::kDelta, 800));
  h.forwarder.OnMediaFromUplink(
      0, 0, MediaPacket(0x10, 2, 2, FrameKind::kDelta, 800));
  h.loop.RunUntil(Timestamp::Zero() + Duration::Millis(20));

  const HubForwarder::DownlinkStats& stats = h.forwarder.stats(0);
  // Both deltas go (frame 1 is oldest unprotected; frame 2 depends on it);
  // the keyframe survives and eventually drains.
  EXPECT_EQ(stats.frames_evicted, 2);
  for (const Delivered& d : h.delivered) {
    EXPECT_EQ(d.packet.frame_kind, FrameKind::kKey);
  }
}

TEST(HubForwarderTest, AnswersNackFromHubHistoryWithFreshStamps) {
  Harness h(FastConfig(10.0));
  for (int64_t frame = 0; frame < 3; ++frame) {
    const FrameKind kind = frame == 0 ? FrameKind::kKey : FrameKind::kDelta;
    h.forwarder.OnMediaFromUplink(
        0, 0, MediaPacket(0x10, static_cast<uint16_t>(frame), frame, kind));
  }
  h.loop.RunUntil(Timestamp::Zero() + Duration::Millis(50));
  ASSERT_EQ(h.delivered.size(), 3u);

  // The receiver reports a hole at hub-stamped mp_seq 1 on path 0.
  RtcpPacket nack;
  nack.path_id = 0;
  nack.payload = Nack{0, {1}};
  EXPECT_TRUE(h.forwarder.OnReceiverRtcp(0, 0, nack));
  // A duplicate (receivers duplicate critical feedback per path) is
  // de-duplicated and answered only once.
  EXPECT_TRUE(h.forwarder.OnReceiverRtcp(0, 0, nack));
  // A NACK for a sequence the hub never stamped is ignored.
  RtcpPacket unknown;
  unknown.path_id = 0;
  unknown.payload = Nack{0, {999}};
  EXPECT_TRUE(h.forwarder.OnReceiverRtcp(0, 0, unknown));
  h.loop.RunUntil(h.loop.now() + Duration::Millis(50));

  ASSERT_EQ(h.delivered.size(), 4u);
  const RtpPacket& rtx = h.delivered.back().packet;
  EXPECT_TRUE(rtx.via_rtx);
  EXPECT_EQ(rtx.rtx_for_path, 0);
  EXPECT_EQ(rtx.rtx_for_mp_seq, 1);
  // The retransmission keeps the per-path wire order sequential: it rides
  // the next fresh mp_seq, not the old one.
  EXPECT_EQ(rtx.mp_seq, 3);
  EXPECT_EQ(h.forwarder.stats(0).rtx_answered, 1);
}

TEST(HubForwarderTest, ConsumesDownlinkFeedbackKinds) {
  Harness h(FastConfig(10.0));
  RtcpPacket fb;
  fb.path_id = 0;
  fb.payload = TransportFeedback{};
  EXPECT_TRUE(h.forwarder.OnReceiverRtcp(0, 0, fb));
  RtcpPacket rr;
  rr.path_id = 0;
  rr.payload = ReceiverReport{};
  EXPECT_TRUE(h.forwarder.OnReceiverRtcp(0, 0, rr));
  // End-to-end signals are NOT consumed: the conference relays them.
  RtcpPacket pli;
  pli.path_id = 0;
  pli.payload = KeyframeRequest{0x10};
  EXPECT_FALSE(h.forwarder.OnReceiverRtcp(0, 0, pli));
  RtcpPacket qoe;
  qoe.path_id = 0;
  qoe.payload = QoeFeedback{};
  EXPECT_FALSE(h.forwarder.OnReceiverRtcp(0, 0, qoe));
}

TEST(DownlinkCcTest, LossyFeedbackDropsTargetBelowStart) {
  DownlinkCc::Config config;
  config.controller.start_rate = DataRate::MegabitsPerSec(5);
  config.controller.max_rate = DataRate::MegabitsPerSec(10);
  DownlinkCc cc(config);
  const DataRate start = cc.target_rate();

  // 2 s of 50 ms feedback batches with 30% loss and growing delay.
  Timestamp now = Timestamp::Zero();
  int64_t seq = 0;
  for (int batch = 0; batch < 40; ++batch) {
    TransportFeedback fb;
    for (int i = 0; i < 20; ++i) {
      const Timestamp sent = now + Duration::Millis(i * 2);
      cc.OnPacketSent(/*leg=*/0, seq, sent, 1200);
      TransportFeedback::Arrival a;
      a.mp_transport_seq = seq;
      // Delay grows with the batch index: a building queue.
      a.recv_time = i % 3 == 0 ? Timestamp::MinusInfinity()
                               : sent + Duration::Millis(20 + batch * 2);
      fb.arrivals.push_back(a);
      ++seq;
    }
    now = now + Duration::Millis(50);
    cc.OnTransportFeedback(/*leg=*/0, fb, now);
  }
  EXPECT_LT(cc.target_rate().bps(), start.bps() / 2);
  EXPECT_GT(cc.packets_lost(), 0);
  EXPECT_GT(cc.packets_acked(), 0);
}

TEST(DownlinkCcTest, SkipsArrivalsOutsideSentHistory) {
  DownlinkCc cc(DownlinkCc::Config{});
  TransportFeedback fb;
  TransportFeedback::Arrival a;
  a.mp_transport_seq = 7;  // never registered via OnPacketSent
  a.recv_time = Timestamp::Zero() + Duration::Millis(10);
  fb.arrivals.push_back(a);
  cc.OnTransportFeedback(0, fb, Timestamp::Zero() + Duration::Millis(20));
  EXPECT_EQ(cc.feedback_batches(), 0);
  EXPECT_EQ(cc.packets_acked(), 0);
}

}  // namespace
}  // namespace converge
