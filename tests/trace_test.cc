#include <gtest/gtest.h>

#include <cstdio>

#include "net/trace.h"

namespace converge {
namespace {

TEST(ValueTraceTest, ConstantTrace) {
  const ValueTrace t = ValueTrace::Constant(5.0);
  EXPECT_EQ(t.ValueAt(Timestamp::Zero()), 5.0);
  EXPECT_EQ(t.ValueAt(Timestamp::Seconds(1000)), 5.0);
}

TEST(ValueTraceTest, PiecewiseLookup) {
  ValueTrace t({{Timestamp::Seconds(0), 1.0},
                {Timestamp::Seconds(10), 2.0},
                {Timestamp::Seconds(20), 3.0}},
               /*repeat=*/false);
  EXPECT_EQ(t.ValueAt(Timestamp::Seconds(0)), 1.0);
  EXPECT_EQ(t.ValueAt(Timestamp::Seconds(5)), 1.0);
  EXPECT_EQ(t.ValueAt(Timestamp::Seconds(10)), 2.0);
  EXPECT_EQ(t.ValueAt(Timestamp::Seconds(15)), 2.0);
  EXPECT_EQ(t.ValueAt(Timestamp::Seconds(25)), 3.0);  // holds
}

TEST(ValueTraceTest, BeforeFirstSampleReturnsFirst) {
  ValueTrace t({{Timestamp::Seconds(10), 7.0}, {Timestamp::Seconds(20), 9.0}},
               false);
  EXPECT_EQ(t.ValueAt(Timestamp::Seconds(1)), 7.0);
}

TEST(ValueTraceTest, RepeatWrapsAround) {
  ValueTrace t({{Timestamp::Seconds(0), 1.0},
                {Timestamp::Seconds(10), 2.0},
                {Timestamp::Seconds(20), 3.0}},
               /*repeat=*/true);
  // span = 20 s; t=25 wraps to t=5 -> 1.0; t=35 wraps to 15 -> 2.0.
  EXPECT_EQ(t.ValueAt(Timestamp::Seconds(25)), 1.0);
  EXPECT_EQ(t.ValueAt(Timestamp::Seconds(35)), 2.0);
}

TEST(ValueTraceTest, UnsortedSamplesAreSorted) {
  ValueTrace t({{Timestamp::Seconds(10), 2.0}, {Timestamp::Seconds(0), 1.0}},
               false);
  EXPECT_EQ(t.ValueAt(Timestamp::Seconds(5)), 1.0);
}

TEST(ValueTraceTest, ScaledMultipliesValues) {
  ValueTrace t({{Timestamp::Seconds(0), 2.0}, {Timestamp::Seconds(5), 4.0}},
               false);
  const ValueTrace s = t.Scaled(2.5);
  EXPECT_EQ(s.ValueAt(Timestamp::Seconds(0)), 5.0);
  EXPECT_EQ(s.ValueAt(Timestamp::Seconds(6)), 10.0);
}

TEST(ValueTraceTest, CsvRoundTrip) {
  ValueTrace t({{Timestamp::Seconds(0), 1.5}, {Timestamp::Seconds(2), 2.5}},
               false);
  const std::string path = testing::TempDir() + "/trace_roundtrip.csv";
  ASSERT_TRUE(t.SaveCsv(path));
  const ValueTrace loaded = ValueTrace::LoadCsv(path, false);
  ASSERT_EQ(loaded.samples().size(), 2u);
  EXPECT_EQ(loaded.ValueAt(Timestamp::Seconds(1)), 1.5);
  EXPECT_EQ(loaded.ValueAt(Timestamp::Seconds(3)), 2.5);
  std::remove(path.c_str());
}

TEST(ValueTraceTest, EmptyTraceReturnsZero) {
  ValueTrace t;
  EXPECT_EQ(t.ValueAt(Timestamp::Seconds(1)), 0.0);
  EXPECT_TRUE(t.empty());
}

TEST(BandwidthTraceTest, CapacityLookup) {
  const BandwidthTrace t = BandwidthTrace::Constant(DataRate::MegabitsPerSec(10));
  EXPECT_EQ(t.CapacityAt(Timestamp::Seconds(5)).mbps(), 10.0);
}

}  // namespace
}  // namespace converge
