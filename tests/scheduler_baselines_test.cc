#include <gtest/gtest.h>

#include "schedulers/connection_migration.h"
#include "schedulers/mprtp_scheduler.h"
#include "schedulers/mtput_scheduler.h"
#include "schedulers/path_stats.h"
#include "schedulers/single_path.h"
#include "schedulers/srtt_scheduler.h"

namespace converge {
namespace {

std::vector<RtpPacket> MakePackets(int n) {
  std::vector<RtpPacket> out;
  for (int i = 0; i < n; ++i) {
    RtpPacket p;
    p.seq = static_cast<uint16_t>(i);
    p.payload_bytes = 1100;
    out.push_back(p);
  }
  return out;
}

PathInfo MakePath(PathId id, double rate_mbps, double srtt_ms,
                  double loss = 0.0) {
  PathInfo p;
  p.id = id;
  p.allocated_rate = DataRate::MegabitsPerSec(rate_mbps);
  p.goodput = DataRate::MegabitsPerSec(rate_mbps);
  p.srtt = Duration::Millis(static_cast<int64_t>(srtt_ms));
  p.loss = loss;
  return p;
}

std::map<PathId, int> CountByPath(const std::vector<PathId>& assignment) {
  std::map<PathId, int> counts;
  for (PathId id : assignment) ++counts[id];
  return counts;
}

TEST(PathStatsTest, MinSrttPath) {
  const std::vector<PathInfo> paths = {MakePath(0, 10, 80), MakePath(1, 5, 30)};
  EXPECT_EQ(MinSrttPath(paths), 1);
  EXPECT_EQ(MinSrttPath({}), kInvalidPathId);
}

TEST(PathStatsTest, MinCompletionTimeBalancesRateAndRtt) {
  // Path 0: fast rate, slow RTT; path 1: slow rate, fast RTT.
  const std::vector<PathInfo> paths = {MakePath(0, 50, 200), MakePath(1, 2, 10)};
  // Few packets: RTT dominates -> path 1. Many packets: rate dominates -> 0.
  EXPECT_EQ(MinCompletionTimePath(paths, 1, 1200), 1);
  EXPECT_EQ(MinCompletionTimePath(paths, 200, 1200), 0);
}

TEST(PathStatsTest, ProportionalSplitSumsToN) {
  const std::vector<PathInfo> paths = {MakePath(0, 15, 50), MakePath(1, 5, 50)};
  const std::vector<int> split = ProportionalSplit(paths, 40);
  EXPECT_EQ(split[0] + split[1], 40);
  EXPECT_EQ(split[0], 30);  // 15/20 * 40
  EXPECT_EQ(split[1], 10);
}

// Remainder ties must go to the LOWER PathId (the reverse pair-sort used to
// hand them to the higher index), and the split must be invariant to the
// order the paths are listed in.
TEST(PathStatsTest, ProportionalSplitTiesFavorLowerPathId) {
  // Equal rates, odd n: every path has remainder 0.5, one gets the extra.
  const std::vector<PathInfo> paths = {MakePath(0, 10, 50), MakePath(1, 10, 50)};
  const std::vector<int> split = ProportionalSplit(paths, 5);
  EXPECT_EQ(split[0] + split[1], 5);
  EXPECT_EQ(split[0], 3);  // tie-break to PathId 0
  EXPECT_EQ(split[1], 2);

  // Same paths listed in reverse order: PathId 0 still wins the tie.
  const std::vector<PathInfo> reversed = {MakePath(1, 10, 50),
                                          MakePath(0, 10, 50)};
  const std::vector<int> rsplit = ProportionalSplit(reversed, 5);
  EXPECT_EQ(rsplit[0] + rsplit[1], 5);
  EXPECT_EQ(rsplit[1], 3);  // PathId 0 is at index 1 here
  EXPECT_EQ(rsplit[0], 2);

  // Three-way tie, two extras: lowest two PathIds get them.
  const std::vector<PathInfo> three = {MakePath(2, 9, 50), MakePath(0, 9, 50),
                                       MakePath(1, 9, 50)};
  const std::vector<int> tsplit = ProportionalSplit(three, 8);
  EXPECT_EQ(tsplit[0] + tsplit[1] + tsplit[2], 8);
  EXPECT_EQ(tsplit[1], 3);  // PathId 0
  EXPECT_EQ(tsplit[2], 3);  // PathId 1
  EXPECT_EQ(tsplit[0], 2);  // PathId 2 misses out
}

TEST(PathStatsTest, ProportionalSplitEdgeCases) {
  EXPECT_TRUE(ProportionalSplit({}, 10).empty());
  const std::vector<PathInfo> one = {MakePath(0, 10, 50)};
  EXPECT_EQ(ProportionalSplit(one, 7)[0], 7);
  const std::vector<PathInfo> two = {MakePath(0, 10, 50), MakePath(1, 10, 50)};
  const auto z = ProportionalSplit(two, 0);
  EXPECT_EQ(z[0] + z[1], 0);
}

TEST(SinglePathTest, EverythingOnOnePath) {
  SinglePathScheduler sched(1);
  const auto packets = MakePackets(10);
  const auto assignment = sched.AssignFrame(
      packets, {MakePath(0, 10, 50), MakePath(1, 10, 50)});
  for (PathId id : assignment) EXPECT_EQ(id, 1);
  EXPECT_TRUE(sched.IsPathActive(1));
  EXPECT_FALSE(sched.IsPathActive(0));
}

TEST(SrttTest, PrefersLowRttPath) {
  SrttScheduler sched;
  const auto packets = MakePackets(4);
  const auto assignment =
      sched.AssignFrame(packets, {MakePath(0, 20, 100), MakePath(1, 20, 20)});
  const auto counts = CountByPath(assignment);
  EXPECT_GT(counts.count(1) ? counts.at(1) : 0, 2);
}

TEST(SrttTest, SpillsToSecondPathUnderBacklog) {
  SrttScheduler sched;
  std::vector<PathInfo> paths = {MakePath(0, 2, 20), MakePath(1, 2, 60)};
  // Large frame: the low-RTT path's projected drain time grows past the
  // other path's latency, forcing spillover.
  const auto packets = MakePackets(60);
  const auto counts = CountByPath(sched.AssignFrame(packets, paths));
  EXPECT_GT(counts.count(0) ? counts.at(0) : 0, 0);
  EXPECT_GT(counts.count(1) ? counts.at(1) : 0, 0);
}

TEST(SrttTest, AccountsExistingPacerBacklog) {
  SrttScheduler sched;
  std::vector<PathInfo> paths = {MakePath(0, 10, 20), MakePath(1, 10, 21)};
  paths[0].pacer_queue_bytes = 1'000'000;  // path 0 badly backlogged
  const auto counts = CountByPath(sched.AssignFrame(MakePackets(10), paths));
  EXPECT_EQ(counts.count(0) ? counts.at(0) : 0, 0);
}

TEST(MtputTest, SplitsProportionalToThroughput) {
  MtputScheduler sched;
  const auto counts = CountByPath(sched.AssignFrame(
      MakePackets(40), {MakePath(0, 30, 50), MakePath(1, 10, 50)}));
  EXPECT_NEAR(counts.at(0), 30, 2);
  EXPECT_NEAR(counts.at(1), 10, 2);
}

TEST(MtputTest, InterleavesWithinFrame) {
  MtputScheduler sched;
  const auto assignment = sched.AssignFrame(
      MakePackets(10), {MakePath(0, 10, 50), MakePath(1, 10, 50)});
  // Equal weights: strict alternation, i.e. adjacent packets differ.
  int switches = 0;
  for (size_t i = 1; i < assignment.size(); ++i) {
    if (assignment[i] != assignment[i - 1]) ++switches;
  }
  EXPECT_GE(switches, 5);
}

TEST(MprtpTest, UsesAllPathsEvenWithHighLoss) {
  MprtpScheduler sched;
  const auto counts = CountByPath(sched.AssignFrame(
      MakePackets(40), {MakePath(0, 20, 50, 0.0), MakePath(1, 20, 50, 0.45)}));
  // The lossy path still carries at least the minimum share.
  EXPECT_GE(counts.at(1), 40 * 0.10);
  EXPECT_GT(counts.at(0), counts.at(1));
}

TEST(MprtpTest, LossDiscountsShare) {
  MprtpScheduler sched;
  const auto counts = CountByPath(sched.AssignFrame(
      MakePackets(100), {MakePath(0, 10, 50, 0.0), MakePath(1, 10, 50, 0.30)}));
  EXPECT_GT(counts.at(0), counts.at(1));
}

TEST(ConnectionMigrationTest, StartsOnInitialPath) {
  ConnectionMigrationScheduler sched;
  const auto assignment = sched.AssignFrame(
      MakePackets(5), {MakePath(0, 10, 50), MakePath(1, 10, 50)});
  for (PathId id : assignment) EXPECT_EQ(id, 0);
  EXPECT_EQ(sched.current_path(), 0);
}

TEST(ConnectionMigrationTest, MigratesAfterSustainedFailure) {
  ConnectionMigrationScheduler::Config c;
  c.failure_window = Duration::Millis(100);
  c.migration_blackout = Duration::Millis(200);
  c.min_dwell = Duration::Millis(100);
  ConnectionMigrationScheduler sched(c);

  std::vector<PathInfo> paths = {MakePath(0, 0.05, 50), MakePath(1, 10, 50)};
  paths[0].goodput = DataRate::KilobitsPerSec(10);  // collapsed
  sched.OnTick(paths, Timestamp::Millis(0));
  EXPECT_EQ(sched.current_path(), 0);
  sched.OnTick(paths, Timestamp::Millis(150));
  EXPECT_EQ(sched.current_path(), 1);
  EXPECT_TRUE(sched.migrating());
  EXPECT_EQ(sched.migrations(), 1);

  // Blackout: frames are blackholed.
  const auto assignment = sched.AssignFrame(MakePackets(3), paths);
  for (PathId id : assignment) EXPECT_EQ(id, kInvalidPathId);

  // After the blackout, traffic flows on the new path.
  sched.OnTick(paths, Timestamp::Millis(400));
  const auto after = sched.AssignFrame(MakePackets(3), paths);
  for (PathId id : after) EXPECT_EQ(id, 1);
}

TEST(ConnectionMigrationTest, HealthyPathNeverMigrates) {
  ConnectionMigrationScheduler sched;
  std::vector<PathInfo> paths = {MakePath(0, 10, 50), MakePath(1, 10, 50)};
  for (int i = 0; i < 100; ++i) {
    sched.OnTick(paths, Timestamp::Millis(100 * i));
  }
  EXPECT_EQ(sched.migrations(), 0);
  EXPECT_EQ(sched.current_path(), 0);
}

TEST(DefaultFecRtxPlacement, FecStaysOnOriginRtxOnMinRtt) {
  SrttScheduler sched;
  const std::vector<PathInfo> paths = {MakePath(0, 10, 100), MakePath(1, 10, 20)};
  RtpPacket fec;
  fec.kind = PayloadKind::kFec;
  EXPECT_EQ(sched.ChooseFecPath(fec, /*origin=*/0, paths), 0);
  RtpPacket rtx;
  EXPECT_EQ(sched.ChooseRtxPath(rtx, paths), 1);
}

}  // namespace
}  // namespace converge
