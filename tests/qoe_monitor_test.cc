#include <gtest/gtest.h>

#include "receiver/qoe_monitor.h"

namespace converge {
namespace {

// Builds a gathered frame whose packets arrive on two paths: path 0 packets
// at `t0`, path 1 packets at the given offsets from t0.
GatheredFrame MakeGathered(Timestamp t0, int n_path0,
                           const std::vector<Duration>& path1_offsets,
                           Duration fcd = Duration::Millis(5)) {
  GatheredFrame g;
  g.frame.fcd = fcd;
  int64_t seq = 0;
  for (int i = 0; i < n_path0; ++i) {
    g.arrivals.push_back({0, t0 + Duration::Millis(i), seq++});
  }
  for (Duration off : path1_offsets) {
    g.arrivals.push_back({1, t0 + off, seq++});
  }
  return g;
}

class QoeMonitorTest : public testing::Test {
 protected:
  QoeMonitorTest()
      : monitor_(&loop_, {},
                 [this](const QoeFeedback& fb) { feedback_.push_back(fb); }) {
    monitor_.SetExpectedFps(30.0);
  }

  EventLoop loop_;
  QoeMonitor monitor_;
  std::vector<QoeFeedback> feedback_;
};

TEST_F(QoeMonitorTest, ExpectedIfdFromFps) {
  EXPECT_NEAR(monitor_.expected_ifd().ms(), 33.3, 0.5);
  monitor_.SetExpectedFps(60.0);
  EXPECT_NEAR(monitor_.expected_ifd().ms(), 16.7, 0.2);
}

TEST_F(QoeMonitorTest, NoFeedbackWhenIfdHealthy) {
  for (int i = 0; i < 20; ++i) {
    monitor_.OnFrameGathered(
        MakeGathered(Timestamp::Millis(33 * i), 4,
                     {Duration::Millis(40), Duration::Millis(45)}));
    monitor_.OnFrameInserted(Duration::Millis(33));
  }
  // Late packets accumulated but IFD never breached: only positive feedback
  // is possible, and late>0 prevents that too.
  for (const auto& fb : feedback_) EXPECT_GE(fb.alpha, 0);
}

TEST_F(QoeMonitorTest, LatePacketsPlusHighIfdYieldNegativeFeedback) {
  loop_.ScheduleAt(Timestamp::Millis(100), [this] {
    for (int i = 0; i < 5; ++i) {
      // Path 1 packets arrive 40-45 ms after path 0 finished: late.
      monitor_.OnFrameGathered(
          MakeGathered(Timestamp::Millis(100 + 33 * i), 4,
                       {Duration::Millis(40), Duration::Millis(45)},
                       Duration::Millis(42)));
      monitor_.OnFrameInserted(Duration::Millis(80));  // IFD breach
    }
  });
  loop_.RunAll();
  ASSERT_FALSE(feedback_.empty());
  const QoeFeedback& fb = feedback_.front();
  EXPECT_EQ(fb.path_id, 1);
  EXPECT_LT(fb.alpha, 0);
  EXPECT_EQ(fb.fcd, Duration::Millis(42));
}

TEST_F(QoeMonitorTest, NegativeAlphaCountsLatePackets) {
  loop_.ScheduleAt(Timestamp::Millis(100), [this] {
    // Two consecutive breaches are required before negative feedback.
    monitor_.OnFrameGathered(MakeGathered(
        Timestamp::Millis(100), 4,
        {Duration::Millis(40), Duration::Millis(45), Duration::Millis(50)}));
    monitor_.OnFrameInserted(Duration::Millis(90));
    monitor_.OnFrameInserted(Duration::Millis(90));
  });
  loop_.RunAll();
  ASSERT_EQ(feedback_.size(), 1u);
  EXPECT_EQ(feedback_[0].alpha, -3);
}

TEST_F(QoeMonitorTest, EarlyPacketsYieldPositiveFeedback) {
  loop_.ScheduleAt(Timestamp::Seconds(1.0), [this] {
    for (int i = 0; i < 6; ++i) {
      // Path 1 packets arrive well before path 0's last packet.
      monitor_.OnFrameGathered(MakeGathered(
          Timestamp::Seconds(1.0) + Duration::Millis(33 * i), 4,
          {-Duration::Millis(20), -Duration::Millis(18)}));
      monitor_.OnFrameInserted(Duration::Millis(33));
    }
  });
  loop_.RunAll();
  ASSERT_FALSE(feedback_.empty());
  EXPECT_EQ(feedback_.front().path_id, 1);
  EXPECT_GT(feedback_.front().alpha, 0);
}

TEST_F(QoeMonitorTest, PositiveFeedbackIsRateLimited) {
  for (int i = 0; i < 30; ++i) {
    monitor_.OnFrameGathered(MakeGathered(
        Timestamp::Millis(33 * i), 4,
        {-Duration::Millis(20), -Duration::Millis(18)}));
    monitor_.OnFrameInserted(Duration::Millis(33));
  }
  // All at sim time 0: at most one positive message per interval.
  EXPECT_LE(feedback_.size(), 1u);
}

TEST_F(QoeMonitorTest, SinglePathFramesProduceNoSignal) {
  loop_.ScheduleAt(Timestamp::Millis(50), [this] {
    for (int i = 0; i < 10; ++i) {
      monitor_.OnFrameGathered(MakeGathered(Timestamp::Millis(50), 5, {}));
      monitor_.OnFrameInserted(Duration::Millis(200));  // bad IFD but no path info
    }
  });
  loop_.RunAll();
  EXPECT_TRUE(feedback_.empty());
}

TEST_F(QoeMonitorTest, NegativeFeedbackRateLimited) {
  loop_.ScheduleAt(Timestamp::Millis(10), [this] {
    for (int i = 0; i < 10; ++i) {
      monitor_.OnFrameGathered(MakeGathered(
          Timestamp::Millis(10), 4, {Duration::Millis(50)}));
      monitor_.OnFrameInserted(Duration::Millis(99));
    }
  });
  loop_.RunAll();
  // All breaches happen at the same instant: min_feedback_interval allows 1.
  EXPECT_EQ(feedback_.size(), 1u);
}

}  // namespace
}  // namespace converge
