// Unit tests for the scripted fault-injection layer (net/fault_plan.h,
// net/fault_injector.h): each event type at link level, the pinned in-flight
// outage semantics, and whole-call determinism — the same seed + plan must
// reproduce the exact same stats JSON however many worker threads ran.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "net/fault_injector.h"
#include "net/fault_plan.h"
#include "net/link.h"
#include "session/call.h"
#include "session/stats_json.h"
#include "trace/generators.h"
#include "util/invariants.h"

namespace converge {
namespace {

Link::Config FaultedConfig(FaultPlan plan,
                           DataRate rate = DataRate::MegabitsPerSec(8),
                           Duration prop = Duration::Millis(20)) {
  Link::Config c;
  c.capacity = BandwidthTrace::Constant(rate);
  c.prop_delay = prop;
  c.faults = std::move(plan);
  return c;
}

// ---------------------------------------------------------------------------
// FaultPlan: aggregate queries.

TEST(FaultPlanTest, OverlappingCliffsMultiplyAndHandoversAdd) {
  FaultPlan plan;
  plan.Add(FaultEvent::RateCliff(Timestamp::Seconds(10), Duration::Seconds(10),
                                 0.5));
  plan.Add(FaultEvent::RateCliff(Timestamp::Seconds(15), Duration::Seconds(10),
                                 0.5));
  plan.Add(FaultEvent::Handover(Timestamp::Seconds(10), Duration::Seconds(5),
                                Duration::Millis(30)));
  plan.Add(FaultEvent::Handover(Timestamp::Seconds(12), Duration::Seconds(5),
                                Duration::Millis(20)));

  EXPECT_DOUBLE_EQ(plan.CapacityScaleAt(Timestamp::Seconds(5)), 1.0);
  EXPECT_DOUBLE_EQ(plan.CapacityScaleAt(Timestamp::Seconds(12)), 0.5);
  EXPECT_DOUBLE_EQ(plan.CapacityScaleAt(Timestamp::Seconds(17)), 0.25);
  EXPECT_EQ(plan.DelayStepAt(Timestamp::Seconds(13)), Duration::Millis(50));
  EXPECT_EQ(plan.DelayStepAt(Timestamp::Seconds(16)), Duration::Millis(20));
  EXPECT_EQ(plan.DelayStepAt(Timestamp::Seconds(30)), Duration::Zero());
  EXPECT_FALSE(plan.Describe().empty());
}

TEST(FaultPlanTest, OutageQueriesAndLastEnd) {
  FaultPlan plan;
  plan.Add(FaultEvent::Outage(Timestamp::Seconds(5), Duration::Seconds(2)));
  plan.Add(FaultEvent::Outage(Timestamp::Seconds(20), Duration::Seconds(1),
                              InFlightPolicy::kDelayToEnd));

  EXPECT_FALSE(plan.InOutage(Timestamp::Seconds(4)));
  EXPECT_TRUE(plan.InOutage(Timestamp::Seconds(6)));
  EXPECT_FALSE(plan.InOutage(Timestamp::Seconds(7)));  // end is exclusive
  ASSERT_TRUE(plan.OutageEnd(Timestamp::Seconds(6)).has_value());
  EXPECT_EQ(*plan.OutageEnd(Timestamp::Seconds(6)), Timestamp::Seconds(7));
  EXPECT_EQ(plan.OutagePolicy(Timestamp::Seconds(6)), InFlightPolicy::kDrop);
  EXPECT_EQ(plan.OutagePolicy(Timestamp::Millis(20500)),
            InFlightPolicy::kDelayToEnd);
  EXPECT_EQ(plan.LastOutageEnd(), Timestamp::Seconds(21));
}

// ---------------------------------------------------------------------------
// Link-level event semantics.

TEST(FaultyLinkTest, OutageDropsEverySendInsideTheWindow) {
  FaultPlan plan;
  plan.Add(FaultEvent::Outage(Timestamp::Millis(100), Duration::Millis(200)));
  EventLoop loop;
  auto link = MakeLink(&loop, FaultedConfig(std::move(plan)), Random(3));

  int delivered = 0;
  int lost = 0;
  auto send_one = [&] {
    link->Send(
        500, [&](Timestamp) { ++delivered; },
        [&](bool queue_drop) {
          EXPECT_FALSE(queue_drop);
          ++lost;
        });
  };
  // 5 sends before, 5 inside, 5 after the window.
  for (int i = 0; i < 5; ++i) {
    loop.ScheduleAt(Timestamp::Millis(2 * i), send_one);
    loop.ScheduleAt(Timestamp::Millis(150 + 2 * i), send_one);
    loop.ScheduleAt(Timestamp::Millis(400 + 2 * i), send_one);
  }
  loop.RunAll();
  EXPECT_EQ(lost, 5);
  EXPECT_EQ(delivered, 10);
  EXPECT_EQ(link->stats().packets_lost, 5);
  EXPECT_EQ(link->stats().packets_delivered, 10);
  EXPECT_EQ(link->stats().packets_sent, 15);
}

TEST(FaultyLinkTest, RateCliffScalesServiceTimeByFraction) {
  FaultPlan plan;
  plan.Add(FaultEvent::RateCliff(Timestamp::Zero(), Duration::Seconds(1),
                                 0.25));
  EventLoop loop;
  // 8 Mbps scaled to 2 Mbps: 1000 bytes serialize in 4 ms instead of 1 ms.
  auto link = MakeLink(
      &loop, FaultedConfig(std::move(plan), DataRate::MegabitsPerSec(8),
                           Duration::Zero()),
      Random(3));
  std::vector<Timestamp> arrivals;
  link->Send(1000, [&](Timestamp t) { arrivals.push_back(t); });
  loop.ScheduleAt(Timestamp::Millis(2000), [&] {
    // Cliff over: back to the nominal 1 ms serialization.
    link->Send(1000, [&](Timestamp t) { arrivals.push_back(t); });
  });
  loop.RunAll();
  ASSERT_EQ(arrivals.size(), 2u);
  EXPECT_EQ(arrivals[0], Timestamp::Millis(4));
  EXPECT_EQ(arrivals[1], Timestamp::Millis(2001));
}

TEST(FaultyLinkTest, HandoverAppliesRttStepThenRecovers) {
  FaultPlan plan;
  plan.Add(FaultEvent::Handover(Timestamp::Millis(100), Duration::Millis(500),
                                Duration::Millis(40), /*burst_loss=*/0.0));
  EventLoop loop;
  auto link = MakeLink(&loop, FaultedConfig(std::move(plan)), Random(3));

  std::vector<Timestamp> arrivals;
  auto send_at = [&](int64_t ms) {
    loop.ScheduleAt(Timestamp::Millis(ms), [&] {
      link->Send(1000, [&](Timestamp t) { arrivals.push_back(t); });
    });
  };
  send_at(0);    // before: 1 ms serialization + 20 ms prop = 21 ms
  send_at(200);  // inside: + 40 ms step = 261 ms
  send_at(700);  // after: step decayed = 721 ms
  loop.RunAll();
  ASSERT_EQ(arrivals.size(), 3u);
  EXPECT_EQ(arrivals[0], Timestamp::Millis(21));
  EXPECT_EQ(arrivals[1], Timestamp::Millis(261));
  EXPECT_EQ(arrivals[2], Timestamp::Millis(721));
}

TEST(FaultyLinkTest, HandoverBurstLossDropsOnlyTheBurstWindow) {
  FaultPlan plan;
  // Deterministic with p=1: everything in the first 300 ms of the window is
  // lost, everything after the burst passes.
  plan.Add(FaultEvent::Handover(Timestamp::Zero(), Duration::Seconds(1),
                                Duration::Millis(10), /*burst_loss=*/1.0,
                                /*burst=*/Duration::Millis(300)));
  EventLoop loop;
  auto link = MakeLink(&loop, FaultedConfig(std::move(plan)), Random(3));
  int delivered = 0;
  int lost = 0;
  for (int i = 0; i < 10; ++i) {
    loop.ScheduleAt(Timestamp::Millis(100 * i), [&] {
      link->Send(
          500, [&](Timestamp) { ++delivered; }, [&](bool) { ++lost; });
    });
  }
  loop.RunAll();
  EXPECT_EQ(lost, 3);       // t = 0, 100, 200 ms
  EXPECT_EQ(delivered, 7);  // t >= 300 ms
}

TEST(FaultyLinkTest, ReorderWindowJittersWithinBoundAndReorders) {
  FaultPlan plan;
  plan.Add(FaultEvent::Reorder(Timestamp::Zero(), Duration::Seconds(5),
                               Duration::Millis(40)));
  EventLoop loop;
  auto link = MakeLink(
      &loop, FaultedConfig(std::move(plan), DataRate::MegabitsPerSec(100),
                           Duration::Millis(10)),
      Random(11));
  std::vector<std::pair<int, Timestamp>> arrivals;
  for (int i = 0; i < 100; ++i) {
    loop.ScheduleAt(Timestamp::Millis(i), [&, i] {
      link->Send(100, [&, i](Timestamp t) { arrivals.emplace_back(i, t); });
    });
  }
  loop.RunAll();
  ASSERT_EQ(arrivals.size(), 100u);
  bool reordered = false;
  for (size_t k = 0; k < arrivals.size(); ++k) {
    const auto& [i, t] = arrivals[k];
    // Nominal arrival is send + serialization (8 µs) + 10 ms prop; jitter
    // adds at most 40 ms on top.
    const Timestamp nominal =
        Timestamp::Millis(i) + Duration::Millis(10) + Duration::Micros(8);
    EXPECT_GE(t, nominal);
    EXPECT_LE(t, nominal + Duration::Millis(40));
    if (k > 0 && arrivals[k].first < arrivals[k - 1].first) reordered = true;
  }
  EXPECT_TRUE(reordered);
}

TEST(FaultyLinkTest, DuplicationWindowDoublesSendCopies) {
  FaultPlan plan;
  plan.Add(FaultEvent::Reorder(Timestamp::Millis(100), Duration::Millis(100),
                               Duration::Zero(), /*duplicate_prob=*/1.0));
  EventLoop loop;
  auto link = MakeLink(&loop, FaultedConfig(std::move(plan)), Random(3));
  int copies_outside = 0;
  int copies_inside = 0;
  loop.ScheduleAt(Timestamp::Zero(),
                  [&] { copies_outside = link->SendCopies(); });
  loop.ScheduleAt(Timestamp::Millis(150),
                  [&] { copies_inside = link->SendCopies(); });
  loop.RunAll();
  EXPECT_EQ(copies_outside, 1);
  EXPECT_EQ(copies_inside, 2);
}

TEST(FaultyLinkTest, EmptyPlanYieldsPlainLink) {
  EventLoop loop;
  auto link = MakeLink(&loop, FaultedConfig(FaultPlan{}), Random(3));
  EXPECT_EQ(dynamic_cast<FaultyLink*>(link.get()), nullptr);
}

// ---------------------------------------------------------------------------
// Satellite 4 regression: in-flight packets vs an outage window. Pinned
// semantics — packets queued *before* the window whose delivery falls inside
// it do NOT sail through at their original timestamps: kDrop loses them,
// kDelayToEnd parks them until the window closes.

TEST(FaultyLinkTest, InFlightPacketCaughtByOutageIsDroppedByDefault) {
  FaultPlan plan;
  plan.Add(FaultEvent::Outage(Timestamp::Millis(50), Duration::Millis(100)));
  EventLoop loop;
  // Sent at t=0, arrival would be 1 ms serialization + 100 ms prop = 101 ms,
  // inside the [50, 150) window.
  auto link = MakeLink(
      &loop, FaultedConfig(std::move(plan), DataRate::MegabitsPerSec(8),
                           Duration::Millis(100)),
      Random(3));
  int delivered = 0;
  int lost = 0;
  link->Send(
      1000, [&](Timestamp) { ++delivered; }, [&](bool) { ++lost; });
  loop.RunAll();
  EXPECT_EQ(delivered, 0);
  EXPECT_EQ(lost, 1);
  // Stats must agree: the delivery was retroactively converted to a loss.
  EXPECT_EQ(link->stats().packets_delivered, 0);
  EXPECT_EQ(link->stats().bytes_delivered, 0);
  EXPECT_EQ(link->stats().packets_lost, 1);
}

TEST(FaultyLinkTest, InFlightPacketDelayedToOutageEndUnderDelayPolicy) {
  FaultPlan plan;
  plan.Add(FaultEvent::Outage(Timestamp::Millis(50), Duration::Millis(100),
                              InFlightPolicy::kDelayToEnd));
  EventLoop loop;
  auto link = MakeLink(
      &loop, FaultedConfig(std::move(plan), DataRate::MegabitsPerSec(8),
                           Duration::Millis(100)),
      Random(3));
  Timestamp arrival = Timestamp::MinusInfinity();
  link->Send(1000, [&](Timestamp t) { arrival = t; });
  loop.RunAll();
  EXPECT_EQ(arrival, Timestamp::Millis(150));
  EXPECT_EQ(link->stats().packets_delivered, 1);
}

TEST(FaultyLinkTest, InFlightDeliveryOutsideWindowsIsUntouched) {
  FaultPlan plan;
  plan.Add(FaultEvent::Outage(Timestamp::Millis(500), Duration::Millis(100)));
  EventLoop loop;
  auto link = MakeLink(&loop, FaultedConfig(std::move(plan)), Random(3));
  Timestamp arrival = Timestamp::MinusInfinity();
  link->Send(1000, [&](Timestamp t) { arrival = t; });
  loop.RunAll();
  // 1 ms serialization + 20 ms prop, well before the window opens.
  EXPECT_EQ(arrival, Timestamp::Millis(21));
}

// ---------------------------------------------------------------------------
// Invariant harness plumbing.

TEST(InvariantRegistryTest, ReportsAreRecordedOnlyWhileEnabled) {
  InvariantRegistry::Clear();
  CONVERGE_INVARIANT("Test", Timestamp::Seconds(1), false, "disabled");
  EXPECT_EQ(InvariantRegistry::violation_count(), 0);
  {
    ScopedInvariants guard;
    CONVERGE_INVARIANT("Test", Timestamp::Seconds(1), 1 + 1 == 2, "fine");
    CONVERGE_INVARIANT("Test", Timestamp::Seconds(2), false, "broken");
    EXPECT_EQ(InvariantRegistry::violation_count(), 1);
    const auto violations = InvariantRegistry::Snapshot();
    ASSERT_EQ(violations.size(), 1u);
    EXPECT_EQ(violations[0].component, "Test");
    EXPECT_EQ(violations[0].condition, "false");
    EXPECT_EQ(violations[0].detail, "broken");
    EXPECT_FALSE(InvariantRegistry::Describe().empty());
  }
  CONVERGE_INVARIANT("Test", Timestamp::Seconds(3), false, "disabled again");
  EXPECT_EQ(InvariantRegistry::violation_count(), 1);
  InvariantRegistry::Clear();
}

// ---------------------------------------------------------------------------
// Whole-call acceptance: a driving-scenario call with a scripted 2 s
// mid-call outage on the primary path completes under every scheduler with
// zero invariant violations.

CallConfig DrivingOutageCall(Variant variant, uint64_t seed) {
  TraceParams params;
  params.length = Duration::Seconds(12);
  CallConfig config;
  config.variant = variant;
  config.paths = MakeScenarioPaths(Scenario::kDriving, seed, params);
  config.paths.front().fault_plan.Add(
      FaultEvent::Outage(Timestamp::Seconds(5), Duration::Seconds(2)));
  config.duration = Duration::Seconds(12);
  config.seed = seed;
  return config;
}

TEST(FaultInjectionAcceptanceTest, DrivingOutageCleanUnderAllSchedulers) {
  const Variant variants[] = {Variant::kSrtt, Variant::kEcf, Variant::kMtput,
                              Variant::kConverge};
  for (Variant v : variants) {
    ScopedInvariants guard;
    Call call(DrivingOutageCall(v, 42));
    const CallStats stats = call.Run();
    EXPECT_GT(stats.media_packets_sent, 0) << ToString(v);
    EXPECT_GT(stats.frames_encoded, 0) << ToString(v);
    EXPECT_EQ(InvariantRegistry::violation_count(), 0)
        << ToString(v) << ":\n"
        << InvariantRegistry::Describe();
  }
}

// ---------------------------------------------------------------------------
// Determinism: the same seed + plan reproduces the exact same stats JSON —
// run to run, with the invariant harness on or off, and across worker
// counts.

TEST(FaultInjectionDeterminismTest, SameSeedAndPlanGiveIdenticalStatsJson) {
  const CallConfig config = DrivingOutageCall(Variant::kConverge, 7);
  Call first(config);
  const std::string json1 = CallStatsToJson(first.Run());
  std::string json2;
  {
    // The harness observes; it must never perturb the simulation.
    ScopedInvariants guard;
    Call second(config);
    json2 = CallStatsToJson(second.Run());
    EXPECT_EQ(InvariantRegistry::violation_count(), 0);
  }
  EXPECT_EQ(json1, json2);
}

TEST(FaultInjectionDeterminismTest, ParallelJobsMatchSerialByteForByte) {
  std::vector<CallConfig> configs;
  for (uint64_t seed : {21, 22, 23}) {
    configs.push_back(DrivingOutageCall(Variant::kConverge, seed));
  }
  const std::vector<CallStats> serial = RunCalls(configs, /*jobs=*/1);
  const std::vector<CallStats> parallel = RunCalls(configs, /*jobs=*/8);
  ASSERT_EQ(serial.size(), parallel.size());
  for (size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(CallStatsToJson(serial[i]), CallStatsToJson(parallel[i]))
        << "seed index " << i;
  }
}

TEST(FaultInjectionDeterminismTest, ScenarioPlansAreSeedDeterministic) {
  Random rng_a(5);
  Random rng_b(5);
  const FaultPlan a = MakeRandomFaultPlan(rng_a, Duration::Seconds(30));
  const FaultPlan b = MakeRandomFaultPlan(rng_b, Duration::Seconds(30));
  EXPECT_EQ(a.Describe(), b.Describe());
  EXPECT_EQ(MakeScenarioFaultPlan(Scenario::kDriving, 9).Describe(),
            MakeScenarioFaultPlan(Scenario::kDriving, 9).Describe());
  EXPECT_NE(MakeScenarioFaultPlan(Scenario::kDriving, 9).Describe(),
            MakeScenarioFaultPlan(Scenario::kDriving, 10).Describe());
}

}  // namespace
}  // namespace converge
