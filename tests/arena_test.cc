// PoolArena + ArenaAllocator coverage: size-class recycling, slab
// accounting, oversized fallback, and the property the receive path relies
// on — a warmed-up container churns nodes with zero new slab growth.
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "util/arena.h"

namespace converge {
namespace {

TEST(PoolArenaTest, RecyclesFreedBlocksPerSizeClass) {
  PoolArena arena;
  void* a = arena.Allocate(64);
  arena.Deallocate(a, 64);
  void* b = arena.Allocate(64);
  EXPECT_EQ(a, b);  // same size class => same block back
  arena.Deallocate(b, 64);
  EXPECT_EQ(arena.stats().live_blocks, 0);
  EXPECT_EQ(arena.stats().pooled_allocs, 2);
  EXPECT_EQ(arena.stats().slabs, 1);
}

TEST(PoolArenaTest, OversizedRequestsFallBackToGlobalNew) {
  PoolArena arena;
  void* big = arena.Allocate(PoolArena::kMaxPooledBytes + 1);
  ASSERT_NE(big, nullptr);
  EXPECT_EQ(arena.stats().fallback_allocs, 1);
  EXPECT_EQ(arena.stats().slabs, 0);  // no slab materialized
  arena.Deallocate(big, PoolArena::kMaxPooledBytes + 1);
  EXPECT_EQ(arena.stats().live_blocks, 0);
}

TEST(PoolArenaTest, SlabGrowthIsBoundedByPeakWorkingSet) {
  PoolArena arena;
  constexpr size_t kBlock = 128;
  constexpr int kLive = 100;
  std::vector<void*> live;
  // Reach the peak working set once...
  for (int i = 0; i < kLive; ++i) live.push_back(arena.Allocate(kBlock));
  const int64_t slabs_at_peak = arena.stats().slabs;
  // ...then churn allocate/free far beyond it: no further slab growth.
  for (int round = 0; round < 1000; ++round) {
    arena.Deallocate(live.back(), kBlock);
    live.pop_back();
    live.push_back(arena.Allocate(kBlock));
  }
  EXPECT_EQ(arena.stats().slabs, slabs_at_peak);
  for (void* p : live) arena.Deallocate(p, kBlock);
  EXPECT_EQ(arena.stats().live_blocks, 0);
}

TEST(ArenaAllocatorTest, MapChurnsNodesWithoutNewSlabs) {
  PoolArena arena;
  ArenaMap<int64_t, int64_t> m(&arena);
  // Warm up to steady-state depth.
  for (int64_t i = 0; i < 64; ++i) m[i] = i;
  const int64_t slabs_warm = arena.stats().slabs;
  EXPECT_GE(slabs_warm, 1);
  // Sliding-window churn, like pending_arrivals/NACK chase lists.
  for (int64_t i = 64; i < 10'000; ++i) {
    m[i] = i;
    m.erase(i - 64);
  }
  EXPECT_EQ(arena.stats().slabs, slabs_warm);
  EXPECT_EQ(m.size(), 64u);
}

TEST(ArenaAllocatorTest, ContainersWithDifferentArenasCompareUnequal) {
  PoolArena a;
  PoolArena b;
  ArenaAllocator<int> alloc_a(&a);
  ArenaAllocator<int> alloc_b(&b);
  EXPECT_TRUE(alloc_a == ArenaAllocator<int>(&a));
  EXPECT_TRUE(alloc_a != alloc_b);
}

TEST(ArenaAllocatorTest, SetAndListWork) {
  PoolArena arena;
  ArenaSet<std::pair<uint32_t, uint16_t>> seen(&arena);
  ArenaList<std::string> pending(&arena);
  for (uint16_t i = 0; i < 100; ++i) seen.insert({1u, i});
  for (int i = 0; i < 10; ++i) pending.push_back("payload");
  EXPECT_EQ(seen.size(), 100u);
  EXPECT_EQ(pending.size(), 10u);
  seen.clear();
  pending.clear();
  // All nodes returned to the arena's free lists.
  const int64_t live = arena.stats().live_blocks;
  // std::string may allocate its payload via the global allocator (it does
  // not use the node allocator); only node blocks are arena-tracked.
  EXPECT_EQ(live, 0);
}

}  // namespace
}  // namespace converge
