#include <gtest/gtest.h>

#include "rtp/rtcp.h"

namespace converge {
namespace {

template <typename T>
T RoundTrip(const RtcpPacket& in) {
  const std::vector<uint8_t> wire = SerializeRtcp(in);
  RtcpPacket out;
  EXPECT_TRUE(ParseRtcp(wire, &out));
  EXPECT_EQ(out.path_id, in.path_id);
  EXPECT_TRUE(std::holds_alternative<T>(out.payload));
  return std::get<T>(out.payload);
}

TEST(RtcpTest, SenderReportRoundTrip) {
  RtcpPacket p;
  p.path_id = 1;
  SenderReport sr;
  sr.ssrc = 0x1000;
  sr.send_time = Timestamp::Millis(1234);
  sr.packet_count = 99;
  sr.octet_count = 12345;
  p.payload = sr;
  const SenderReport out = RoundTrip<SenderReport>(p);
  EXPECT_EQ(out.ssrc, sr.ssrc);
  EXPECT_EQ(out.send_time, sr.send_time);
  EXPECT_EQ(out.packet_count, sr.packet_count);
}

TEST(RtcpTest, ReceiverReportRoundTrip) {
  RtcpPacket p;
  p.path_id = 2;
  ReceiverReport rr;
  rr.ssrc = 0x1001;
  rr.fraction_lost = 0.125;
  rr.cumulative_lost = 42;
  rr.ext_high_seq = 777;
  rr.ext_high_mp_seq = 333;
  rr.jitter = Duration::Micros(1500);
  rr.last_sr_time = Timestamp::Millis(100);
  rr.delay_since_last_sr = Duration::Millis(20);
  p.payload = rr;
  const ReceiverReport out = RoundTrip<ReceiverReport>(p);
  EXPECT_NEAR(out.fraction_lost, 0.125, 1e-6);
  EXPECT_EQ(out.cumulative_lost, 42);
  EXPECT_EQ(out.ext_high_mp_seq, 333);
  EXPECT_EQ(out.jitter, rr.jitter);
  EXPECT_EQ(out.last_sr_time, rr.last_sr_time);
  EXPECT_EQ(out.delay_since_last_sr, rr.delay_since_last_sr);
}

TEST(RtcpTest, TransportFeedbackRoundTrip) {
  RtcpPacket p;
  p.path_id = 0;
  TransportFeedback fb;
  fb.arrivals.push_back({100, Timestamp::Millis(5)});
  fb.arrivals.push_back({101, Timestamp::MinusInfinity()});  // lost
  fb.arrivals.push_back({102, Timestamp::Millis(9)});
  p.payload = fb;
  const TransportFeedback out = RoundTrip<TransportFeedback>(p);
  ASSERT_EQ(out.arrivals.size(), 3u);
  EXPECT_EQ(out.arrivals[0].recv_time, Timestamp::Millis(5));
  EXPECT_FALSE(out.arrivals[1].recv_time.IsFinite());
  // Note: transport seqs travel as 16-bit on the wire.
  EXPECT_EQ(out.arrivals[2].mp_transport_seq & 0xFFFF, 102);
}

TEST(RtcpTest, NackRoundTrip) {
  RtcpPacket p;
  p.path_id = 1;
  Nack nack;
  nack.ssrc = 0x2000;
  nack.seqs = {5, 9, 1000};
  p.payload = nack;
  const Nack out = RoundTrip<Nack>(p);
  EXPECT_EQ(out.ssrc, 0x2000u);
  EXPECT_EQ(out.seqs, nack.seqs);
}

TEST(RtcpTest, KeyframeRequestRoundTrip) {
  RtcpPacket p;
  KeyframeRequest req;
  req.ssrc = 0x3000;
  p.payload = req;
  EXPECT_EQ(RoundTrip<KeyframeRequest>(p).ssrc, 0x3000u);
}

TEST(RtcpTest, SdesFrameRateRoundTrip) {
  RtcpPacket p;
  SdesFrameRate sdes;
  sdes.ssrc = 0x4000;
  sdes.fps = 29.97;
  p.payload = sdes;
  const SdesFrameRate out = RoundTrip<SdesFrameRate>(p);
  EXPECT_NEAR(out.fps, 29.97, 0.001);
}

TEST(RtcpTest, QoeFeedbackRoundTrip) {
  RtcpPacket p;
  p.path_id = 2;
  QoeFeedback fb;
  fb.path_id = 2;
  fb.alpha = -7;
  fb.fcd = Duration::Millis(45);
  p.payload = fb;
  const QoeFeedback out = RoundTrip<QoeFeedback>(p);
  EXPECT_EQ(out.path_id, 2);
  EXPECT_EQ(out.alpha, -7);
  EXPECT_EQ(out.fcd, Duration::Millis(45));
}

TEST(RtcpTest, WireSizeMatchesSerializedLength) {
  RtcpPacket p;
  p.path_id = 1;
  TransportFeedback fb;
  for (int i = 0; i < 20; ++i) fb.arrivals.push_back({i, Timestamp::Millis(i)});
  p.payload = fb;
  // wire_size is the accounting size used for link transmission; it should
  // be within a word of the actual serialized length.
  const auto wire = SerializeRtcp(p);
  EXPECT_NEAR(static_cast<double>(p.wire_size()),
              static_cast<double>(wire.size()), 4.0);
}

TEST(RtcpTest, ParseRejectsGarbage) {
  RtcpPacket out;
  EXPECT_FALSE(ParseRtcp({0x00, 0x01}, &out));
  std::vector<uint8_t> bad(16, 0);
  bad[0] = 0x80;
  bad[1] = 99;  // unknown type
  EXPECT_FALSE(ParseRtcp(bad, &out));
}

}  // namespace
}  // namespace converge
