#include <gtest/gtest.h>

#include "core/video_aware_scheduler.h"
#include "fec/converge_fec_controller.h"
#include "session/sender.h"

namespace converge {
namespace {

class SenderTest : public testing::Test {
 protected:
  void Build(int num_streams = 1) {
    Sender::Config config;
    for (int i = 0; i < num_streams; ++i) {
      Sender::StreamConfig sc;
      sc.ssrc = 0x1000 + static_cast<uint32_t>(i);
      sc.camera.stream_id = i;
      config.streams.push_back(sc);
    }
    config.max_total_rate = DataRate::MegabitsPerSec(10);
    sender_ = std::make_unique<Sender>(
        &loop_, config, &scheduler_, &fec_, std::vector<PathId>{0, 1},
        Random(1),
        [this](PathId path, const RtpPacket& p) {
          sent_.emplace_back(path, p);
        },
        [this](PathId path, const RtcpPacket& p) {
          rtcp_.emplace_back(path, p);
        });
    sender_->Start();
  }

  // Simulates receiver feedback keeping GCC happy on both paths.
  void FeedHealthyFeedback(Duration for_time) {
    const Timestamp end = loop_.now() + for_time;
    while (loop_.now() < end) {
      loop_.RunUntil(loop_.now() + Duration::Millis(50));
      for (PathId path : {0, 1}) {
        // Acknowledge everything sent on this path in the last interval.
        TransportFeedback fb;
        for (const auto& [p, pkt] : sent_) {
          if (p != path) continue;
          if (pkt.send_time < loop_.now() - Duration::Millis(60)) continue;
          TransportFeedback::Arrival a;
          a.mp_transport_seq = pkt.mp_transport_seq;
          a.recv_time = pkt.send_time + Duration::Millis(25);
          fb.arrivals.push_back(a);
        }
        RtcpPacket rtcp;
        rtcp.path_id = path;
        rtcp.payload = fb;
        sender_->HandleRtcp(rtcp, loop_.now());

        ReceiverReport rr;
        rr.fraction_lost = 0.0;
        rr.last_sr_time = loop_.now() - Duration::Millis(50);
        rr.delay_since_last_sr = Duration::Millis(0);
        RtcpPacket rtcp2;
        rtcp2.path_id = path;
        rtcp2.payload = rr;
        sender_->HandleRtcp(rtcp2, loop_.now());
      }
    }
  }

  int CountKind(PayloadKind kind) const {
    int n = 0;
    for (const auto& [path, p] : sent_) {
      if (p.kind == kind) ++n;
    }
    return n;
  }

  EventLoop loop_;
  VideoAwareScheduler scheduler_;
  ConvergeFecController fec_;
  std::unique_ptr<Sender> sender_;
  std::vector<std::pair<PathId, RtpPacket>> sent_;
  std::vector<std::pair<PathId, RtcpPacket>> rtcp_;
};

TEST_F(SenderTest, SendsMediaOnBothKindsOfTimers) {
  Build();
  FeedHealthyFeedback(Duration::Seconds(2.0));
  EXPECT_GT(CountKind(PayloadKind::kMedia), 30);
  EXPECT_GT(CountKind(PayloadKind::kPps), 30);
  EXPECT_GE(CountKind(PayloadKind::kSps), 1);  // at least the first keyframe
  EXPECT_GT(sender_->stats().frames_encoded, 50);
}

TEST_F(SenderTest, MultipathHeadersStampedPerPath) {
  Build();
  FeedHealthyFeedback(Duration::Seconds(1.0));
  std::map<PathId, uint16_t> expected_seq;
  for (const auto& [path, p] : sent_) {
    EXPECT_EQ(p.path_id, path);
    auto [it, inserted] = expected_seq.emplace(path, p.mp_seq);
    if (!inserted) {
      EXPECT_EQ(p.mp_seq, static_cast<uint16_t>(it->second + 1));
      it->second = p.mp_seq;
    }
  }
  EXPECT_GE(expected_seq.size(), 1u);
}

TEST_F(SenderTest, RateRampsWithCleanFeedback) {
  Build();
  const DataRate before = sender_->current_encoder_target();
  FeedHealthyFeedback(Duration::Seconds(5.0));
  EXPECT_GT(sender_->current_encoder_target().bps(), before.bps());
}

TEST_F(SenderTest, NackTriggersRtxWithDedup) {
  Build();
  FeedHealthyFeedback(Duration::Seconds(1.0));
  // Pick a media packet that was sent (by value: sent_ keeps growing).
  std::optional<RtpPacket> victim;
  for (const auto& [path, p] : sent_) {
    if (p.kind == PayloadKind::kMedia) {
      victim = p;
      break;
    }
  }
  ASSERT_TRUE(victim.has_value());

  // NACKs reference (path, per-path mp_seq).
  Nack nack;
  nack.seqs = {victim->mp_seq};
  RtcpPacket rtcp;
  rtcp.path_id = victim->path_id;
  rtcp.payload = nack;
  sender_->HandleRtcp(rtcp, loop_.now());
  sender_->HandleRtcp(rtcp, loop_.now());  // duplicate (other path copy)
  loop_.RunUntil(loop_.now() + Duration::Millis(50));

  EXPECT_EQ(sender_->stats().rtx_packets_sent, 1);
  int rtx_seen = 0;
  for (const auto& [path, p] : sent_) {
    if (p.via_rtx) {
      ++rtx_seen;
      EXPECT_EQ(p.seq, victim->seq);
      EXPECT_EQ(p.priority, Priority::kRetransmit);
    }
  }
  EXPECT_EQ(rtx_seen, 1);
}

TEST_F(SenderTest, KeyframeRequestForcesKeyframe) {
  Build();
  FeedHealthyFeedback(Duration::Seconds(1.0));
  const int64_t before = sender_->stats().keyframes_encoded;
  KeyframeRequest req;
  req.ssrc = 0x1000;
  RtcpPacket rtcp;
  rtcp.path_id = 0;
  rtcp.payload = req;
  sender_->HandleRtcp(rtcp, loop_.now());
  FeedHealthyFeedback(Duration::Millis(200));
  EXPECT_EQ(sender_->stats().keyframes_encoded, before + 1);
}

TEST_F(SenderTest, LegacySsrcNackRetransmits) {
  Build();
  FeedHealthyFeedback(Duration::Seconds(1.0));
  std::optional<RtpPacket> victim;
  for (const auto& [path, p] : sent_) {
    if (p.kind == PayloadKind::kMedia) {
      victim = p;
      break;
    }
  }
  ASSERT_TRUE(victim.has_value());

  // Legacy NACK addresses (ssrc, media seq) with no path attribution.
  Nack nack;
  nack.ssrc = victim->ssrc;
  nack.seqs = {victim->seq};
  RtcpPacket rtcp;
  rtcp.path_id = kInvalidPathId;
  rtcp.payload = nack;
  sender_->HandleRtcp(rtcp, loop_.now());
  sender_->HandleRtcp(rtcp, loop_.now());  // duplicate
  loop_.RunUntil(loop_.now() + Duration::Millis(50));
  EXPECT_EQ(sender_->stats().rtx_packets_sent, 1);
  for (const auto& [path, p] : sent_) {
    if (p.via_rtx) {
      EXPECT_EQ(p.seq, victim->seq);
      EXPECT_EQ(p.ssrc, victim->ssrc);
      // No per-path hole tag in legacy mode.
      EXPECT_EQ(p.rtx_for_path, kInvalidPathId);
    }
  }
}

TEST_F(SenderTest, QoeFeedbackReachesScheduler) {
  Build();
  QoeFeedback fb;
  fb.path_id = 1;
  fb.alpha = -5;
  fb.fcd = Duration::Millis(30);
  RtcpPacket rtcp;
  rtcp.path_id = 1;
  rtcp.payload = fb;
  sender_->HandleRtcp(rtcp, loop_.now());
  EXPECT_NEAR(scheduler_.alpha(1), -5.0, 1e-9);
}

TEST_F(SenderTest, SendsSenderReportsAndSdes) {
  Build();
  loop_.RunUntil(Timestamp::Seconds(1.0));
  int srs = 0;
  int sdes = 0;
  for (const auto& [path, p] : rtcp_) {
    if (std::holds_alternative<SenderReport>(p.payload)) ++srs;
    if (std::holds_alternative<SdesFrameRate>(p.payload)) ++sdes;
  }
  EXPECT_GE(srs, 10);
  EXPECT_GE(sdes, 1);
}

TEST_F(SenderTest, FecGeneratedUnderLoss) {
  Build();
  // Report loss on path 0 so the Converge controller budgets parity.
  for (int i = 0; i < 40; ++i) {
    ReceiverReport rr;
    rr.fraction_lost = 0.08;
    RtcpPacket rtcp;
    rtcp.path_id = 0;
    rtcp.payload = rr;
    sender_->HandleRtcp(rtcp, loop_.now());
    loop_.RunUntil(loop_.now() + Duration::Millis(50));
  }
  EXPECT_GT(CountKind(PayloadKind::kFec), 0);
}

TEST_F(SenderTest, DisabledPathReceivesProbeDuplicates) {
  Build();
  FeedHealthyFeedback(Duration::Seconds(1.0));
  // Hammer path 1 with negative feedback until the scheduler disables it.
  for (int i = 0; i < 10; ++i) {
    QoeFeedback fb;
    fb.path_id = 1;
    fb.alpha = -20;
    fb.fcd = Duration::Millis(2);
    RtcpPacket rtcp;
    rtcp.path_id = 1;
    rtcp.payload = fb;
    sender_->HandleRtcp(rtcp, loop_.now());
    FeedHealthyFeedback(Duration::Millis(100));
  }
  // The path cycles through disable -> probe -> (Eq. 3) re-enable; the
  // disable counter proves the cycle ran even if it is re-enabled now.
  FeedHealthyFeedback(Duration::Millis(500));
  EXPECT_GT(scheduler_.path_manager().disables(), 0);
  EXPECT_GT(sender_->stats().probe_packets_sent, 0);
  // Probe duplicates ride the disabled path and are marked as such.
  bool saw_probe_on_disabled = false;
  for (const auto& [path, p] : sent_) {
    if (p.is_probe_duplicate) {
      EXPECT_EQ(path, 1);
      EXPECT_EQ(p.kind, PayloadKind::kProbe);
      saw_probe_on_disabled = true;
    }
  }
  EXPECT_TRUE(saw_probe_on_disabled);
}

TEST_F(SenderTest, EncoderPushbackThrottlesUnderPacerBacklog) {
  Build();
  FeedHealthyFeedback(Duration::Seconds(3.0));
  const DataRate before = sender_->current_encoder_target();
  ASSERT_GT(before.kbps(), 400.0);
  // Stop acknowledging anything: GCC holds its rate but nothing drains
  // fast enough once we stop feeding transport feedback; the pacer backlog
  // grows and pushback kicks in. Simulate directly by ceasing feedback and
  // letting the encoder outrun the (stale) pacer rate: rates stay equal, so
  // instead verify pushback via the worst-queue path: enqueue artificially
  // by dropping the path rates through loss reports.
  for (int i = 0; i < 30; ++i) {
    ReceiverReport rr;
    rr.fraction_lost = 0.5;  // collapse both paths' loss-based rate
    for (PathId path : {0, 1}) {
      RtcpPacket rtcp;
      rtcp.path_id = path;
      rtcp.payload = rr;
      sender_->HandleRtcp(rtcp, loop_.now());
    }
    loop_.RunUntil(loop_.now() + Duration::Millis(50));
  }
  EXPECT_LT(sender_->current_encoder_target().bps(), before.bps());
}

TEST_F(SenderTest, MultiStreamSplitsEncoderBudget) {
  Build(/*num_streams=*/3);
  FeedHealthyFeedback(Duration::Seconds(2.0));
  std::set<uint32_t> ssrcs;
  for (const auto& [path, p] : sent_) ssrcs.insert(p.ssrc);
  EXPECT_GE(ssrcs.size(), 3u);
}

}  // namespace
}  // namespace converge
