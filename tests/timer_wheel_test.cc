// Differential test pinning the timer-wheel EventLoop against a reference
// binary-heap scheduler, plus the schedule-in-the-past accounting the wheel
// rewrite surfaced.
//
// The reference model is the seed-era implementation distilled to its
// essentials: a (timestamp, seq) min-heap where seq is assigned at
// ScheduleAt time. The wheel must execute the exact same sequence of
// (time, id) pairs on every schedule the heap handles — same-timestamp
// bursts (cursor-heap tie-breaks), events beyond the 512-tick wheel horizon
// (overflow migration), and callbacks that schedule more work for the
// current instant (cursor re-entry).
#include <algorithm>
#include <cstdint>
#include <functional>
#include <queue>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "sim/event_loop.h"
#include "util/invariants.h"
#include "util/random.h"

namespace converge {
namespace {

// Reference scheduler: plain (timestamp, seq) min-heap with FIFO tie-break.
// Carries (id, depth) so chained re-schedules track their position without
// any id-keyed lookup.
class HeapModel {
 public:
  void ScheduleAt(Timestamp at, int id, int depth) {
    if (at < now_) at = now_;
    heap_.push(Entry{at, next_seq_++, id, depth});
  }

  // Executes everything due by `end`; calls visit(time, id, depth, this) in
  // order (visit may schedule more).
  template <typename Visit>
  void RunUntil(Timestamp end, Visit&& visit) {
    while (!heap_.empty() && heap_.top().at <= end) {
      const Entry e = heap_.top();
      heap_.pop();
      now_ = e.at;
      visit(e.at, e.id, e.depth, this);
    }
    if (now_ < end) now_ = end;
  }

  Timestamp now() const { return now_; }

 private:
  struct Entry {
    Timestamp at;
    int64_t seq;
    int id;
    int depth;
    bool operator>(const Entry& o) const {
      return at != o.at ? at > o.at : seq > o.seq;
    }
  };
  std::priority_queue<Entry, std::vector<Entry>, std::greater<Entry>> heap_;
  Timestamp now_ = Timestamp::Zero();
  int64_t next_seq_ = 0;
};

struct Execution {
  Timestamp at;
  int id;
};

// Follow-up delay derived purely from (id): both models compute it
// identically without sharing state. The classes cover cursor re-entry
// (zero delay), near-bucket hops, mid-wheel hops, and overflow jumps past
// the ~524 ms wheel horizon.
Duration FollowUp(int id) {
  switch (id % 5) {
    case 0: return Duration::Zero();
    case 1: return Duration::Micros(1);
    case 2: return Duration::Micros(700);
    case 3: return Duration::Millis(37);
    default: return Duration::Millis(900);
  }
}

constexpr int kMaxChain = 3;

int NextChainId(int id, int depth) { return id * 31 + depth + 1; }

// Drives both schedulers through the same randomized schedule (including
// follow-up events scheduled from inside callbacks) and compares the full
// execution orders.
void RunDifferential(uint64_t seed, int initial_events, int64_t horizon_us,
                     Duration run_chunk) {
  EventLoop wheel;
  HeapModel heap;
  std::vector<Execution> wheel_order;
  std::vector<Execution> heap_order;

  std::function<void(int, int, Timestamp)> arm_wheel =
      [&](int id, int depth, Timestamp at) {
        wheel.ScheduleAt(at, [&, id, depth] {
          wheel_order.push_back({wheel.now(), id});
          if (depth < kMaxChain) {
            arm_wheel(NextChainId(id, depth), depth + 1,
                      wheel.now() + FollowUp(id));
          }
        });
      };

  Random rng(seed);
  struct Seeded {
    Timestamp at;
    int id;
  };
  std::vector<Seeded> seeds;
  for (int i = 0; i < initial_events; ++i) {
    // Bursts: several events share a timestamp to stress tie-breaks.
    const int64_t us = rng.UniformInt(0, horizon_us);
    const int burst = 1 + static_cast<int>(rng.UniformInt(0, 2));
    for (int b = 0; b < burst; ++b) {
      seeds.push_back(
          {Timestamp::Zero() + Duration::Micros(us), i * 100 + b});
    }
  }
  for (const Seeded& s : seeds) arm_wheel(s.id, 0, s.at);
  for (const Seeded& s : seeds) heap.ScheduleAt(s.at, s.id, 0);

  const auto heap_visit = [&](Timestamp at, int id, int depth,
                              HeapModel* model) {
    heap_order.push_back({at, id});
    if (depth < kMaxChain) {
      model->ScheduleAt(at + FollowUp(id), NextChainId(id, depth), depth + 1);
    }
  };

  const Timestamp end =
      Timestamp::Zero() + Duration::Micros(horizon_us) + Duration::Seconds(4);
  // Run in chunks so RunUntil boundaries land mid-schedule too (with a chunk
  // larger than the whole schedule, the final catch-up below is the single
  // giant RunUntil).
  for (Timestamp t = Timestamp::Zero() + run_chunk; t <= end;
       t = t + run_chunk) {
    wheel.RunUntil(t);
    heap.RunUntil(t, heap_visit);
    ASSERT_EQ(wheel.now(), heap.now());
    ASSERT_EQ(wheel_order.size(), heap_order.size())
        << "diverged within chunk ending at " << t.us() << "us";
  }
  wheel.RunUntil(end);
  heap.RunUntil(end, heap_visit);
  ASSERT_EQ(wheel.now(), heap.now());

  ASSERT_EQ(wheel_order.size(), heap_order.size());
  for (size_t i = 0; i < wheel_order.size(); ++i) {
    ASSERT_EQ(wheel_order[i].at, heap_order[i].at) << "execution " << i;
    ASSERT_EQ(wheel_order[i].id, heap_order[i].id) << "execution " << i;
  }
  EXPECT_EQ(wheel.pending_events(), 0u);
  EXPECT_EQ(wheel.executed_events(),
            static_cast<int64_t>(wheel_order.size()));
}

TEST(TimerWheelDifferential, DenseNearHorizonSchedules) {
  // Everything initially lands inside the 512-tick (~524 ms) wheel window.
  RunDifferential(/*seed=*/1, /*initial_events=*/400,
                  /*horizon_us=*/400'000, Duration::Millis(50));
}

TEST(TimerWheelDifferential, FarFutureOverflowSchedules) {
  // Most initial events sit beyond the wheel horizon and must migrate out
  // of the overflow heap as the window slides.
  RunDifferential(/*seed=*/2, /*initial_events=*/300,
                  /*horizon_us=*/3'000'000, Duration::Millis(250));
}

TEST(TimerWheelDifferential, CoarseChunksCrossManyBuckets) {
  // One giant RunUntil spanning the entire schedule: the cursor must sweep
  // every bucket round without a boundary ever parking it.
  RunDifferential(/*seed=*/3, /*initial_events=*/200,
                  /*horizon_us=*/1'500'000, Duration::Seconds(10));
}

TEST(TimerWheelDifferential, SameTimestampBurstsKeepFifoOrder) {
  EventLoop loop;
  std::vector<int> order;
  const Timestamp at = Timestamp::Zero() + Duration::Millis(5);
  for (int i = 0; i < 64; ++i) {
    loop.ScheduleAt(at, [&order, i] { order.push_back(i); });
  }
  // A second burst at the same instant, scheduled from inside a callback
  // that runs first (scheduled earlier): lands in the cursor heap while the
  // tick is already open.
  loop.ScheduleAt(Timestamp::Zero() + Duration::Millis(4), [&] {
    for (int i = 64; i < 96; ++i) {
      loop.ScheduleAt(at, [&order, i] { order.push_back(i); });
    }
  });
  loop.RunAll();
  ASSERT_EQ(order.size(), 96u);
  EXPECT_TRUE(std::is_sorted(order.begin(), order.end()));
}

TEST(TimerWheelDifferential, ScheduleInsideCallbackAcrossHorizon) {
  // A chain that repeatedly hops past the wheel window forces overflow
  // migration while the cursor is mid-dispatch.
  EventLoop loop;
  std::vector<Timestamp> fired;
  std::function<void(int)> hop = [&](int remaining) {
    fired.push_back(loop.now());
    if (remaining > 0) {
      loop.ScheduleIn(Duration::Millis(600),
                      [&hop, remaining] { hop(remaining - 1); });
    }
  };
  loop.ScheduleIn(Duration::Millis(1), [&hop] { hop(10); });
  loop.RunAll();
  ASSERT_EQ(fired.size(), 11u);
  for (size_t i = 1; i < fired.size(); ++i) {
    EXPECT_EQ(fired[i] - fired[i - 1], Duration::Millis(600));
  }
}

TEST(TimerWheelPastClamp, CountsAndClampsScheduleInThePast) {
  EventLoop loop;
  int ran_at_now = 0;
  loop.ScheduleIn(Duration::Millis(10), [&] {
    // From t=10ms, schedule for t=5ms: must clamp to now and count.
    loop.ScheduleAt(Timestamp::Zero() + Duration::Millis(5), [&] {
      ran_at_now = loop.now().us() == 10'000 ? 1 : -1;
    });
  });
  EXPECT_EQ(loop.clamped_past_events(), 0);
  loop.RunAll();
  EXPECT_EQ(ran_at_now, 1);
  EXPECT_EQ(loop.clamped_past_events(), 1);
}

TEST(TimerWheelPastClamp, InvariantFiresWhenEnabled) {
  ScopedInvariants scoped;
  EventLoop loop;
  loop.ScheduleIn(Duration::Millis(10),
                  [&] { loop.ScheduleAt(Timestamp::Zero(), [] {}); });
  loop.RunAll();
  EXPECT_EQ(loop.clamped_past_events(), 1);
  const auto violations = InvariantRegistry::Snapshot();
  ASSERT_EQ(violations.size(), 1u);
  EXPECT_EQ(violations[0].component, "EventLoop");
}

TEST(TimerWheelPastClamp, NoFalsePositivesOnNormalSchedules) {
  ScopedInvariants scoped;
  EventLoop loop;
  int fired = 0;
  for (int i = 0; i < 100; ++i) {
    loop.ScheduleIn(Duration::Micros(i * 100), [&] { ++fired; });
  }
  loop.RunAll();
  EXPECT_EQ(fired, 100);
  EXPECT_EQ(loop.clamped_past_events(), 0);
  EXPECT_EQ(InvariantRegistry::violation_count(), 0);
}

}  // namespace
}  // namespace converge
