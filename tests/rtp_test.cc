#include <gtest/gtest.h>

#include "rtp/rtp_packet.h"
#include "rtp/sequence_number.h"

namespace converge {
namespace {

TEST(SequenceNumberTest, NewerThanHandlesWrap) {
  EXPECT_TRUE(SeqNewerThan(1, 0));
  EXPECT_TRUE(SeqNewerThan(0, 0xFFFF));  // wrap
  EXPECT_FALSE(SeqNewerThan(0xFFFF, 0));
  EXPECT_FALSE(SeqNewerThan(5, 5));
  EXPECT_TRUE(SeqNewerThan(0x8000, 0x0001));
}

TEST(SequenceNumberTest, Distance) {
  EXPECT_EQ(SeqDistance(10, 15), 5);
  EXPECT_EQ(SeqDistance(0xFFFE, 2), 4);  // across the wrap
}

TEST(SeqUnwrapperTest, MonotoneAcrossWrap) {
  SeqUnwrapper u;
  EXPECT_EQ(u.Unwrap(0xFFFE), 0xFFFE);
  EXPECT_EQ(u.Unwrap(0xFFFF), 0xFFFF);
  EXPECT_EQ(u.Unwrap(0), 0x10000);
  EXPECT_EQ(u.Unwrap(1), 0x10001);
}

TEST(SeqUnwrapperTest, HandlesReordering) {
  SeqUnwrapper u;
  EXPECT_EQ(u.Unwrap(100), 100);
  EXPECT_EQ(u.Unwrap(99), 99);   // late packet: unwraps backwards
  EXPECT_EQ(u.Unwrap(101), 101);
}

TEST(RtpPacketTest, WireSizeIncludesHeaderAndExtension) {
  RtpPacket p;
  p.payload_bytes = 1000;
  EXPECT_EQ(p.wire_size(), 1000 + kRtpHeaderBytes + kMultipathExtensionBytes);
}

TEST(RtpPacketTest, SerializeParseRoundTrip) {
  RtpPacket p;
  p.ssrc = 0xDEADBEEF;
  p.seq = 0xABCD;
  p.rtp_timestamp = 123456789;
  p.marker = true;
  p.payload_type = 96;
  p.path_id = 2;
  p.mp_seq = 0x1234;
  p.mp_transport_seq = 0x5678;

  const std::vector<uint8_t> wire = SerializeRtpHeader(p);
  EXPECT_EQ(wire.size(),
            static_cast<size_t>(kRtpHeaderBytes + kMultipathExtensionBytes));

  RtpPacket out;
  ASSERT_TRUE(ParseRtpHeader(wire, &out));
  EXPECT_EQ(out.ssrc, p.ssrc);
  EXPECT_EQ(out.seq, p.seq);
  EXPECT_EQ(out.rtp_timestamp, p.rtp_timestamp);
  EXPECT_TRUE(out.marker);
  EXPECT_EQ(out.payload_type, 96);
  EXPECT_EQ(out.path_id, 2);
  EXPECT_EQ(out.mp_seq, 0x1234);
  EXPECT_EQ(out.mp_transport_seq, 0x5678);
}

TEST(RtpPacketTest, LayeredHeaderRoundTripsWithoutGrowingTheWire) {
  RtpPacket p;
  p.ssrc = 0x1234;
  p.seq = 77;
  p.spatial_id = 2;
  p.num_spatial = 3;
  p.temporal_id = 1;
  p.num_temporal = 2;

  const std::vector<uint8_t> wire = SerializeRtpHeader(p);
  // The layers element rides in the extension block's existing padding:
  // layered and unlayered headers serialize to the same size, so wire_size
  // accounting (and every byte-pinned fixture) is unchanged.
  EXPECT_EQ(wire.size(),
            static_cast<size_t>(kRtpHeaderBytes + kMultipathExtensionBytes));

  RtpPacket out;
  ASSERT_TRUE(ParseRtpHeader(wire, &out));
  EXPECT_EQ(out.spatial_id, 2);
  EXPECT_EQ(out.num_spatial, 3);
  EXPECT_EQ(out.temporal_id, 1);
  EXPECT_EQ(out.num_temporal, 2);
}

TEST(RtpPacketTest, UnlayeredHeaderBytesAreUnchangedAndParseToDefaults) {
  // Single-layer packets must not emit the layers element at all: the
  // serialized bytes are identical to the pre-layers wire format.
  RtpPacket p;
  p.ssrc = 0xDEAD;
  p.seq = 42;
  const std::vector<uint8_t> wire = SerializeRtpHeader(p);

  RtpPacket layered = p;
  layered.num_spatial = 1;
  layered.num_temporal = 1;
  layered.spatial_id = 0;
  layered.temporal_id = 0;
  EXPECT_EQ(SerializeRtpHeader(layered), wire);

  RtpPacket out;
  ASSERT_TRUE(ParseRtpHeader(wire, &out));
  EXPECT_EQ(out.spatial_id, 0);
  EXPECT_EQ(out.num_spatial, 1);
  EXPECT_EQ(out.temporal_id, 0);
  EXPECT_EQ(out.num_temporal, 1);
}

TEST(RtpPacketTest, ParseRejectsTruncatedBuffer) {
  RtpPacket p;
  std::vector<uint8_t> wire = SerializeRtpHeader(p);
  wire.resize(8);
  RtpPacket out;
  EXPECT_FALSE(ParseRtpHeader(wire, &out));
}

TEST(RtpPacketTest, ParseRejectsWrongVersion) {
  RtpPacket p;
  std::vector<uint8_t> wire = SerializeRtpHeader(p);
  wire[0] = 0x10;  // version 0
  RtpPacket out;
  EXPECT_FALSE(ParseRtpHeader(wire, &out));
}

TEST(RtpPacketTest, PriorityClassification) {
  RtpPacket p;
  p.priority = Priority::kKeyframe;
  EXPECT_TRUE(p.IsDecodingCritical());
  p.priority = Priority::kSps;
  EXPECT_TRUE(p.IsDecodingCritical());
  p.priority = Priority::kFec;
  EXPECT_FALSE(p.IsDecodingCritical());
  p.priority = Priority::kNone;
  EXPECT_FALSE(p.IsDecodingCritical());
}

// Table 2 ordering: retransmit > keyframe > SPS > PPS > FEC.
TEST(RtpPacketTest, PriorityLevelsMatchTable2) {
  EXPECT_LT(static_cast<int>(Priority::kRetransmit),
            static_cast<int>(Priority::kKeyframe));
  EXPECT_LT(static_cast<int>(Priority::kKeyframe),
            static_cast<int>(Priority::kSps));
  EXPECT_LT(static_cast<int>(Priority::kSps), static_cast<int>(Priority::kPps));
  EXPECT_LT(static_cast<int>(Priority::kPps), static_cast<int>(Priority::kFec));
}

}  // namespace
}  // namespace converge
