#include <gtest/gtest.h>

#include "fec/xor_fec.h"
#include "receiver/receiver.h"

namespace converge {
namespace {

class ReceiveStreamTest : public testing::Test {
 protected:
  ReceiveStreamTest() {
    VideoReceiveStream::Config config;
    config.ssrc = 0x1000;
    config.stream_id = 0;
    config.min_keyframe_request_interval = Duration::Millis(100);
    VideoReceiveStream::Callbacks callbacks;
    callbacks.send_keyframe_request = [this](uint32_t) { ++pli_; };
    callbacks.send_qoe_feedback = [this](const QoeFeedback& fb) {
      qoe_.push_back(fb);
    };
    callbacks.on_decoded = [this](const DecodedFrame& f) {
      decoded_.push_back(f.frame_id);
    };
    stream_ = std::make_unique<VideoReceiveStream>(&loop_, config, callbacks);
  }

  // Sends a complete frame: PPS + `media` media packets (SPS on keyframes).
  std::vector<RtpPacket> BuildFrame(int64_t frame_id, FrameKind kind,
                                    int media, int64_t gop) {
    std::vector<RtpPacket> out;
    auto make = [&](PayloadKind k, Priority prio, int64_t bytes) {
      RtpPacket p;
      p.ssrc = 0x1000;
      p.seq = next_seq_++;
      p.stream_id = 0;
      p.frame_id = frame_id;
      p.gop_id = gop;
      p.frame_kind = kind;
      p.kind = k;
      p.priority = prio;
      p.payload_bytes = bytes;
      p.capture_time = loop_.now();
      return p;
    };
    if (kind == FrameKind::kKey) {
      out.push_back(make(PayloadKind::kSps, Priority::kSps, 40));
    }
    out.push_back(make(PayloadKind::kPps, Priority::kPps, 20));
    for (int i = 0; i < media; ++i) {
      out.push_back(make(PayloadKind::kMedia,
                         kind == FrameKind::kKey ? Priority::kKeyframe
                                                 : Priority::kNone,
                         1000));
    }
    out.front().first_in_frame = true;
    out.back().last_in_frame = true;
    out.back().marker = true;
    return out;
  }

  void Deliver(const std::vector<RtpPacket>& packets,
               const std::vector<uint16_t>& skip_seqs = {}) {
    for (const auto& p : packets) {
      bool skip = false;
      for (uint16_t s : skip_seqs) {
        if (p.seq == s) skip = true;
      }
      if (!skip) stream_->OnRtpPacket(p, loop_.now(), 0);
    }
  }

  EventLoop loop_;
  std::unique_ptr<VideoReceiveStream> stream_;
  uint16_t next_seq_ = 0;
  int pli_ = 0;
  std::vector<QoeFeedback> qoe_;
  std::vector<int64_t> decoded_;
};

TEST_F(ReceiveStreamTest, DecodesCleanSequence) {
  Deliver(BuildFrame(0, FrameKind::kKey, 4, 0));
  for (int64_t i = 1; i <= 5; ++i) {
    loop_.RunUntil(loop_.now() + Duration::Millis(33));
    Deliver(BuildFrame(i, FrameKind::kDelta, 3, 0));
  }
  loop_.RunUntil(loop_.now() + Duration::Millis(50));
  EXPECT_EQ(decoded_.size(), 6u);
  EXPECT_EQ(stream_->GetStats().FrameDrops(), 0);
  EXPECT_EQ(pli_, 0);
}

TEST_F(ReceiveStreamTest, RtxHealsLostPacket) {
  Deliver(BuildFrame(0, FrameKind::kKey, 4, 0));
  const auto frame1 = BuildFrame(1, FrameKind::kDelta, 3, 0);
  // One media packet of frame 1 is lost in transit.
  const uint16_t lost = frame1[2].seq;
  Deliver(frame1, {lost});
  loop_.RunUntil(loop_.now() + Duration::Millis(33));
  Deliver(BuildFrame(2, FrameKind::kDelta, 3, 0));
  loop_.RunUntil(loop_.now() + Duration::Millis(30));

  // The endpoint's NACK machinery requests it; the RTX copy arrives.
  RtpPacket rtx = frame1[2];
  rtx.via_rtx = true;
  stream_->OnRtpPacket(rtx, loop_.now(), 0);
  loop_.RunUntil(loop_.now() + Duration::Millis(50));
  EXPECT_EQ(decoded_.size(), 3u);
  EXPECT_EQ(stream_->GetStats().FrameDrops(), 0);
}

TEST_F(ReceiveStreamTest, FecRecoveryCompletesFrame) {
  Deliver(BuildFrame(0, FrameKind::kKey, 4, 0));
  const auto frame1 = BuildFrame(1, FrameKind::kDelta, 4, 0);
  // Parity over the frame's packets.
  std::vector<const RtpPacket*> ptrs;
  for (const auto& p : frame1) ptrs.push_back(&p);
  auto parity = XorFecEncoder::Generate(ptrs, 1, 1);
  parity[0].seq = 999;  // separate FEC sequence space

  const uint16_t lost = frame1[3].seq;
  Deliver(frame1, {lost});
  stream_->OnRtpPacket(parity[0], loop_.now(), 0);
  loop_.RunUntil(loop_.now() + Duration::Millis(50));
  EXPECT_EQ(decoded_.size(), 2u);
  EXPECT_EQ(stream_->fec().stats().packets_recovered, 1);
}

TEST_F(ReceiveStreamTest, UnhealedLossDropsFrameAndRequestsKeyframe) {
  Deliver(BuildFrame(0, FrameKind::kKey, 4, 0));
  const auto frame1 = BuildFrame(1, FrameKind::kDelta, 3, 0);
  Deliver(frame1, {frame1[1].seq});  // permanent loss
  for (int64_t i = 2; i <= 4; ++i) {
    loop_.RunUntil(loop_.now() + Duration::Millis(33));
    Deliver(BuildFrame(i, FrameKind::kDelta, 3, 0));
  }
  loop_.RunUntil(loop_.now() + Duration::Millis(400));
  EXPECT_GT(stream_->GetStats().FrameDrops(), 0);
  EXPECT_GE(pli_, 1);
  // Frames 2..4 were released but undecodable (chain broken at 1).
  EXPECT_EQ(decoded_.size(), 1u);
}

TEST_F(ReceiveStreamTest, KeyframeRequestsRateLimited) {
  Deliver(BuildFrame(0, FrameKind::kKey, 4, 0));
  // Cause repeated breakage within the rate-limit window.
  const auto f1 = BuildFrame(1, FrameKind::kDelta, 2, 0);
  Deliver(f1, {f1[1].seq});
  const auto f2 = BuildFrame(2, FrameKind::kDelta, 2, 0);
  Deliver(f2, {f2[1].seq});
  for (int64_t i = 3; i <= 8; ++i) Deliver(BuildFrame(i, FrameKind::kDelta, 2, 0));
  loop_.RunUntil(loop_.now() + Duration::Millis(90));
  EXPECT_LE(pli_, 1);
}

TEST_F(ReceiveStreamTest, RecoversAfterKeyframe) {
  Deliver(BuildFrame(0, FrameKind::kKey, 4, 0));
  const auto f1 = BuildFrame(1, FrameKind::kDelta, 3, 0);
  Deliver(f1, {f1[1].seq});  // break the chain
  loop_.RunUntil(loop_.now() + Duration::Millis(300));
  // New GOP arrives.
  Deliver(BuildFrame(2, FrameKind::kKey, 4, 1));
  Deliver(BuildFrame(3, FrameKind::kDelta, 3, 1));
  loop_.RunUntil(loop_.now() + Duration::Millis(100));
  EXPECT_GE(decoded_.size(), 3u);  // 0, 2, 3
}

}  // namespace
}  // namespace converge
