#include <gtest/gtest.h>

#include "receiver/frame_buffer.h"

namespace converge {
namespace {

AssembledFrame MakeFrame(int64_t id, FrameKind kind = FrameKind::kDelta,
                         int64_t gop = 0) {
  AssembledFrame f;
  f.stream_id = 0;
  f.frame_id = id;
  f.gop_id = gop;
  f.kind = kind;
  return f;
}

class FrameBufferTest : public testing::Test {
 protected:
  FrameBufferTest()
      : buffer_(&loop_, {.capacity_frames = 4, .max_wait = Duration::Millis(100)},
                [this](const AssembledFrame& f) { released_.push_back(f.frame_id); },
                [this] { ++keyframe_requests_; },
                [this](int stream, int64_t upto) {
                  purges_.emplace_back(stream, upto);
                }) {}

  EventLoop loop_;
  FrameBuffer buffer_;
  std::vector<int64_t> released_;
  int keyframe_requests_ = 0;
  std::vector<std::pair<int, int64_t>> purges_;
};

TEST_F(FrameBufferTest, ReleasesInOrder) {
  buffer_.Insert(MakeFrame(0, FrameKind::kKey));
  buffer_.Insert(MakeFrame(1));
  buffer_.Insert(MakeFrame(2));
  EXPECT_EQ(released_, (std::vector<int64_t>{0, 1, 2}));
  EXPECT_EQ(buffer_.stats().frames_released, 3);
}

TEST_F(FrameBufferTest, ReordersOutOfOrderInsertions) {
  buffer_.Insert(MakeFrame(0, FrameKind::kKey));
  buffer_.Insert(MakeFrame(2));
  buffer_.Insert(MakeFrame(3));
  EXPECT_EQ(released_, (std::vector<int64_t>{0}));
  buffer_.Insert(MakeFrame(1));
  EXPECT_EQ(released_, (std::vector<int64_t>{0, 1, 2, 3}));
  EXPECT_EQ(buffer_.stats().frames_dropped, 0);
}

TEST_F(FrameBufferTest, WaitTimeoutSkipsMissingFrame) {
  buffer_.Insert(MakeFrame(0, FrameKind::kKey));
  buffer_.Insert(MakeFrame(2));  // frame 1 missing
  loop_.RunUntil(Timestamp::Millis(50));
  EXPECT_EQ(released_, (std::vector<int64_t>{0}));
  loop_.RunUntil(Timestamp::Millis(200));
  // After max_wait the buffer jumps: frame 1 dropped. Frame 2 is a delta
  // whose reference is gone, so it is purged rather than released, and a
  // keyframe is requested.
  EXPECT_EQ(released_, (std::vector<int64_t>{0}));
  EXPECT_EQ(buffer_.stats().frames_dropped, 2);
  EXPECT_GE(keyframe_requests_, 1);  // re-requested while dropping
  ASSERT_EQ(purges_.size(), 1u);
  EXPECT_EQ(purges_[0].second, 1);
}

TEST_F(FrameBufferTest, FullBufferForcesJumpWithoutWaiting) {
  buffer_.Insert(MakeFrame(0, FrameKind::kKey));
  for (int64_t id = 2; id <= 5; ++id) buffer_.Insert(MakeFrame(id));
  // Capacity 4 reached -> immediate jump over frame 1; the buffered deltas
  // are undecodable without it and get dropped too.
  EXPECT_EQ(released_, (std::vector<int64_t>{0}));
  EXPECT_EQ(buffer_.stats().frames_dropped, 5);
  EXPECT_GE(keyframe_requests_, 1);

  // A fresh keyframe restores decoding.
  buffer_.Insert(MakeFrame(6, FrameKind::kKey, /*gop=*/1));
  EXPECT_EQ(released_, (std::vector<int64_t>{0, 6}));
}

TEST_F(FrameBufferTest, JumpPrefersBufferedKeyframe) {
  buffer_.Insert(MakeFrame(0, FrameKind::kKey));
  buffer_.Insert(MakeFrame(2));
  buffer_.Insert(MakeFrame(3));
  buffer_.Insert(MakeFrame(4, FrameKind::kKey, /*gop=*/1));
  buffer_.Insert(MakeFrame(5, FrameKind::kDelta, /*gop=*/1));
  // Buffer full -> jump straight to the keyframe at 4, dropping 1-3.
  EXPECT_EQ(released_, (std::vector<int64_t>{0, 4, 5}));
  EXPECT_EQ(buffer_.stats().frames_dropped, 3);
  EXPECT_EQ(buffer_.stats().keyframe_jumps, 1);
  EXPECT_EQ(keyframe_requests_, 0);  // no request needed: chain restarts
}

TEST_F(FrameBufferTest, StaleFrameIgnoredAfterSkip) {
  buffer_.Insert(MakeFrame(0, FrameKind::kKey));
  buffer_.Insert(MakeFrame(2));
  loop_.RunUntil(Timestamp::Millis(200));  // frame 1 skipped, 2 purged
  const int64_t drops = buffer_.stats().frames_dropped;
  EXPECT_EQ(drops, 2);
  buffer_.Insert(MakeFrame(1));  // arrives too late
  EXPECT_EQ(buffer_.stats().frames_dropped, drops);  // not double counted
  EXPECT_EQ(released_, (std::vector<int64_t>{0}));
}

TEST_F(FrameBufferTest, IfdTracksInsertionGap) {
  buffer_.Insert(MakeFrame(0, FrameKind::kKey));
  loop_.ScheduleAt(Timestamp::Millis(40), [this] { buffer_.Insert(MakeFrame(1)); });
  loop_.RunUntil(Timestamp::Millis(50));
  EXPECT_EQ(buffer_.last_ifd(), Duration::Millis(40));
}

TEST_F(FrameBufferTest, TimerRearmsAfterProgress) {
  buffer_.Insert(MakeFrame(0, FrameKind::kKey));
  buffer_.Insert(MakeFrame(2));
  // Frame 1 shows up before the deadline: no drop.
  loop_.ScheduleAt(Timestamp::Millis(50), [this] { buffer_.Insert(MakeFrame(1)); });
  loop_.RunUntil(Timestamp::Millis(300));
  EXPECT_EQ(buffer_.stats().frames_dropped, 0);
  EXPECT_EQ(released_, (std::vector<int64_t>{0, 1, 2}));

  // A later gap still triggers the jump (timer re-arms). Frame 3 is
  // missing and frame 4 is an undecodable delta: both count as dropped.
  buffer_.Insert(MakeFrame(4));
  loop_.RunUntil(Timestamp::Millis(600));
  EXPECT_EQ(buffer_.stats().frames_dropped, 2);
}

}  // namespace
}  // namespace converge
