#include <gtest/gtest.h>

#include "receiver/nack_generator.h"

namespace converge {
namespace {

class NackTest : public testing::Test {
 protected:
  NackTest()
      : nack_(&loop_,
              {.reorder_grace = Duration::Millis(10),
               .retry_interval = Duration::Millis(100),
               .max_retries = 3},
              [this](PathId path, const std::vector<uint16_t>& seqs) {
                for (uint16_t s : seqs) sent_.emplace_back(path, s);
              }) {}

  EventLoop loop_;
  NackGenerator nack_;
  std::vector<std::pair<PathId, uint16_t>> sent_;
};

TEST_F(NackTest, NoNackWithoutGap) {
  for (uint16_t s = 0; s < 10; ++s) nack_.OnPacket(0, s);
  loop_.RunUntil(Timestamp::Millis(500));
  EXPECT_TRUE(sent_.empty());
}

TEST_F(NackTest, GapTriggersNackAfterGrace) {
  nack_.OnPacket(0, 0);
  nack_.OnPacket(0, 3);  // 1, 2 missing on path 0
  loop_.RunUntil(Timestamp::Millis(5));
  EXPECT_TRUE(sent_.empty());  // still within the reorder grace window
  loop_.RunUntil(Timestamp::Millis(30));
  ASSERT_EQ(sent_.size(), 2u);
  EXPECT_EQ(sent_[0], (std::pair<PathId, uint16_t>{0, 1}));
  EXPECT_EQ(sent_[1], (std::pair<PathId, uint16_t>{0, 2}));
}

TEST_F(NackTest, ReorderedArrivalCancelsNack) {
  nack_.OnPacket(0, 0);
  nack_.OnPacket(0, 2);
  nack_.OnPacket(0, 1);  // reorder fills the gap in time
  loop_.RunUntil(Timestamp::Millis(100));
  EXPECT_TRUE(sent_.empty());
  EXPECT_EQ(nack_.outstanding(), 0u);
}

TEST_F(NackTest, RetriesThenGivesUp) {
  nack_.OnPacket(0, 0);
  nack_.OnPacket(0, 2);
  loop_.RunUntil(Timestamp::Seconds(2.0));
  EXPECT_EQ(sent_.size(), 3u);  // 3 retries max for seq 1
  EXPECT_EQ(nack_.outstanding(), 0u);
  EXPECT_EQ(nack_.stats().abandoned, 1);
}

TEST_F(NackTest, ArrivalAfterNackCountsRecovered) {
  nack_.OnPacket(0, 0);
  nack_.OnPacket(0, 2);
  loop_.RunUntil(Timestamp::Millis(50));
  EXPECT_EQ(sent_.size(), 1u);
  nack_.OnPacket(0, 1);  // RTX arrived
  loop_.RunUntil(Timestamp::Seconds(2.0));
  EXPECT_EQ(sent_.size(), 1u);  // no more retries
  EXPECT_EQ(nack_.stats().recovered, 1);
}

TEST_F(NackTest, PathsTrackedIndependently) {
  // A gap on path 1 must not be confused with path 0's sequence space.
  nack_.OnPacket(0, 100);
  nack_.OnPacket(1, 10);
  nack_.OnPacket(1, 12);  // gap at (1, 11)
  nack_.OnPacket(0, 101);  // contiguous on path 0
  loop_.RunUntil(Timestamp::Millis(50));
  ASSERT_EQ(sent_.size(), 1u);
  EXPECT_EQ(sent_[0], (std::pair<PathId, uint16_t>{1, 11}));
}

TEST_F(NackTest, CrossPathSkewProducesNoNacks) {
  // The core multipath property: interleaved delivery across two paths
  // (each FIFO) never looks like loss, no matter the skew.
  for (uint16_t s = 0; s < 50; ++s) nack_.OnPacket(0, s);
  for (uint16_t s = 0; s < 50; ++s) nack_.OnPacket(1, s);
  loop_.RunUntil(Timestamp::Seconds(1.0));
  EXPECT_TRUE(sent_.empty());
}

TEST_F(NackTest, BurstLossCappedAtOutstandingLimit) {
  NackGenerator capped(&loop_,
                       {.reorder_grace = Duration::Millis(5),
                        .retry_interval = Duration::Millis(100),
                        .max_retries = 3,
                        .max_outstanding_per_path = 16},
                       [this](PathId, const std::vector<uint16_t>& seqs) {
                         for (uint16_t s : seqs) sent_.emplace_back(0, s);
                       });
  capped.OnPacket(0, 0);
  capped.OnPacket(0, 500);  // 499 packets "lost" at once: a path collapse
  EXPECT_LE(capped.outstanding(), 16u);
  EXPECT_GE(capped.stats().abandoned, 483);
  loop_.RunUntil(Timestamp::Millis(50));
  EXPECT_LE(sent_.size(), 16u);  // no NACK storm
}

TEST_F(NackTest, EntriesExpireByAge) {
  NackGenerator aged(&loop_,
                     {.reorder_grace = Duration::Millis(5),
                      .retry_interval = Duration::Millis(500),
                      .max_retries = 100,
                      .max_age = Duration::Millis(200)},
                     [](PathId, const std::vector<uint16_t>&) {});
  aged.OnPacket(0, 0);
  aged.OnPacket(0, 2);
  loop_.RunUntil(Timestamp::Millis(400));
  // Expired long before the 100 retries could happen.
  EXPECT_EQ(aged.outstanding(), 0u);
  EXPECT_EQ(aged.stats().abandoned, 1);
}

TEST_F(NackTest, OnRecoveredClearsChase) {
  nack_.OnPacket(0, 0);
  nack_.OnPacket(0, 2);
  loop_.RunUntil(Timestamp::Millis(30));
  const size_t after_first = sent_.size();
  EXPECT_GE(after_first, 1u);
  nack_.OnRecovered(0, 1);
  loop_.RunUntil(Timestamp::Seconds(1.0));
  EXPECT_EQ(sent_.size(), after_first);  // no retries after recovery
  EXPECT_EQ(nack_.stats().recovered, 1);
}

TEST_F(NackTest, WrapAroundGapDetected) {
  nack_.OnPacket(0, 0xFFFE);
  nack_.OnPacket(0, 1);  // 0xFFFF and 0 missing across the wrap
  loop_.RunUntil(Timestamp::Millis(50));
  ASSERT_EQ(sent_.size(), 2u);
  EXPECT_EQ(sent_[0].second, 0xFFFF);
  EXPECT_EQ(sent_[1].second, 0);
}

// Regression for the seq-truncation bug: entries used to store `s & 0xFFFF`
// next to the unwrapped key, and OnRecovered did a first-match linear scan
// on the truncated value — ambiguous whenever the chase list straddles the
// 0xFFFF→0x0000 boundary. Recovery at the boundary must erase exactly the
// right entry.
TEST_F(NackTest, RecoveryAcrossWrapBoundaryClearsRightEntry) {
  nack_.OnPacket(0, 0xFFFD);
  nack_.OnPacket(0, 2);  // missing: 0xFFFE, 0xFFFF, 0, 1 across the wrap
  EXPECT_EQ(nack_.outstanding(), 4u);

  nack_.OnRecovered(0, 0xFFFF);  // pre-wrap wire seq
  nack_.OnRecovered(0, 0);       // post-wrap wire seq
  EXPECT_EQ(nack_.outstanding(), 2u);
  EXPECT_EQ(nack_.stats().recovered, 2);

  // The survivors are exactly 0xFFFE and 1.
  loop_.RunUntil(Timestamp::Millis(50));
  ASSERT_EQ(sent_.size(), 2u);
  EXPECT_EQ(sent_[0].second, 0xFFFE);
  EXPECT_EQ(sent_[1].second, 1);
}

// A recovery notice for a sequence that is not being chased (e.g. a stale
// duplicate RTX) must be a no-op — in particular it must not erase an alias
// 65536 away or disturb the unwrapper.
TEST_F(NackTest, SpuriousRecoveryIsNoOp) {
  nack_.OnPacket(0, 10);
  nack_.OnPacket(0, 13);  // missing: 11, 12
  nack_.OnRecovered(0, 11);
  EXPECT_EQ(nack_.outstanding(), 1u);
  // Same wire seq again, and one that was never missing.
  nack_.OnRecovered(0, 11);
  nack_.OnRecovered(0, 500);
  EXPECT_EQ(nack_.outstanding(), 1u);
  EXPECT_EQ(nack_.stats().recovered, 1);
  // Gap detection still works after the recovery calls.
  nack_.OnPacket(0, 15);  // 14 now missing too
  EXPECT_EQ(nack_.outstanding(), 2u);
}

// A stale arrival from >32768 behind unwraps FORWARD (int16 delta), which
// used to insert up to 65535 chase entries one by one before trimming. The
// generator must survive such a jump with bounded work and a bounded list.
TEST_F(NackTest, HugeForwardJumpIsBounded) {
  nack_.OnPacket(0, 100);
  nack_.OnPacket(0, 40000);  // unwraps ~39900 ahead
  EXPECT_LE(nack_.outstanding(), 64u);  // default max_outstanding_per_path
  EXPECT_GE(nack_.stats().abandoned, 39'800);
  // Still functional afterwards: the newest entries are chased.
  loop_.RunUntil(Timestamp::Millis(50));
  EXPECT_GT(sent_.size(), 0u);
  EXPECT_LE(sent_.size(), 64u);
}

}  // namespace
}  // namespace converge
