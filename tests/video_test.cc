#include <gtest/gtest.h>

#include "sim/event_loop.h"
#include "video/camera.h"
#include "video/decoder.h"
#include "video/encoder.h"
#include "video/packetizer.h"
#include "video/quality.h"

namespace converge {
namespace {

TEST(CameraTest, EmitsFramesAtFps) {
  EventLoop loop;
  int frames = 0;
  Camera::Config c;
  c.fps = 30.0;
  Camera cam(&loop, c, Random(1), [&](const RawFrame&) { ++frames; });
  cam.Start();
  loop.RunUntil(Timestamp::Seconds(2.0));
  EXPECT_NEAR(frames, 60, 1);
}

TEST(CameraTest, FrameNumbersMonotone) {
  EventLoop loop;
  int64_t last = -1;
  Camera::Config c;
  Camera cam(&loop, c, Random(2), [&](const RawFrame& f) {
    EXPECT_EQ(f.frame_number, last + 1);
    last = f.frame_number;
    EXPECT_GE(f.complexity, 0.5);
    EXPECT_LE(f.complexity, 2.0);
  });
  cam.Start();
  loop.RunUntil(Timestamp::Seconds(1.0));
  EXPECT_GE(last, 25);
}

TEST(CameraTest, StopHaltsCapture) {
  EventLoop loop;
  int frames = 0;
  Camera::Config c;
  Camera cam(&loop, c, Random(1), [&](const RawFrame&) { ++frames; });
  cam.Start();
  loop.RunUntil(Timestamp::Seconds(1.0));
  cam.Stop();
  const int at_stop = frames;
  loop.RunUntil(Timestamp::Seconds(2.0));
  EXPECT_EQ(frames, at_stop);
}

RawFrame MakeRaw(int64_t n) {
  RawFrame raw;
  raw.frame_number = n;
  raw.capture_time = Timestamp::Millis(n * 33);
  return raw;
}

TEST(EncoderTest, FirstFrameIsKeyframe) {
  Encoder enc({}, Random(1));
  const EncodedFrame f = enc.Encode(MakeRaw(0));
  EXPECT_EQ(f.kind, FrameKind::kKey);
  EXPECT_EQ(f.frame_id, 0);
  EXPECT_EQ(f.gop_id, 0);
  const EncodedFrame g = enc.Encode(MakeRaw(1));
  EXPECT_EQ(g.kind, FrameKind::kDelta);
  EXPECT_EQ(g.gop_id, 0);
}

TEST(EncoderTest, KeyframeOnRequestStartsNewGop) {
  Encoder enc({}, Random(1));
  enc.Encode(MakeRaw(0));
  enc.Encode(MakeRaw(1));
  enc.RequestKeyframe();
  const EncodedFrame f = enc.Encode(MakeRaw(2));
  EXPECT_EQ(f.kind, FrameKind::kKey);
  EXPECT_EQ(f.gop_id, 1);
  EXPECT_EQ(enc.keyframes_encoded(), 2);
}

TEST(EncoderTest, ResolutionLadderStepsDownAndForcesKeyframe) {
  Encoder::Config c;
  c.size_jitter = 0.0;
  c.min_resolution_dwell = Duration::Seconds(1.0);
  Encoder enc(c, Random(1));
  enc.SetTargetRate(DataRate::MegabitsPerSec(8.0));
  RawFrame raw = MakeRaw(0);
  EXPECT_EQ(enc.Encode(raw).width, 1280);  // first (key)frame, full res
  EXPECT_EQ(enc.resolution_step(), 0);

  // Rate collapses: after the dwell, the encoder steps down and re-keys.
  enc.SetTargetRate(DataRate::KilobitsPerSec(600));
  raw = MakeRaw(1);
  raw.capture_time = Timestamp::Seconds(2.0);
  const EncodedFrame down = enc.Encode(raw);
  EXPECT_EQ(down.width, 640);
  EXPECT_EQ(down.kind, FrameKind::kKey);
  EXPECT_EQ(enc.resolution_step(), 1);

  // Rate recovers: steps back up (after another dwell), re-keying again.
  enc.SetTargetRate(DataRate::MegabitsPerSec(8.0));
  raw = MakeRaw(2);
  raw.capture_time = Timestamp::Seconds(4.0);
  const EncodedFrame up = enc.Encode(raw);
  EXPECT_EQ(up.width, 1280);
  EXPECT_EQ(up.kind, FrameKind::kKey);
}

TEST(EncoderTest, ResolutionDwellPreventsFlapping) {
  Encoder::Config c;
  c.min_resolution_dwell = Duration::Seconds(3.0);
  Encoder enc(c, Random(1));
  enc.SetTargetRate(DataRate::MegabitsPerSec(8.0));
  enc.Encode(MakeRaw(0));
  enc.SetTargetRate(DataRate::KilobitsPerSec(600));
  RawFrame raw = MakeRaw(1);
  raw.capture_time = Timestamp::Millis(33);
  enc.Encode(raw);  // too soon after start to switch? (first change allowed)
  const int step_after_first = enc.resolution_step();
  enc.SetTargetRate(DataRate::MegabitsPerSec(8.0));
  raw = MakeRaw(2);
  raw.capture_time = Timestamp::Millis(66);
  enc.Encode(raw);
  // Whatever the first decision was, it cannot flip back within the dwell.
  EXPECT_EQ(enc.resolution_step(), step_after_first);
}

TEST(EncoderTest, LadderPenalizesReportedQp) {
  Encoder::Config c;
  c.size_jitter = 0.0;
  c.min_resolution_dwell = Duration::Millis(1);
  Encoder enc(c, Random(1));
  enc.SetTargetRate(DataRate::KilobitsPerSec(500));
  RawFrame raw = MakeRaw(0);
  raw.capture_time = Timestamp::Seconds(1.0);
  const EncodedFrame low = enc.Encode(raw);
  ASSERT_GT(enc.resolution_step(), 0);
  // The reported (full-res-equivalent) QP includes the upscaling penalty.
  const int raw_qp = QpForBudget(500e3 / 30.0, low.width, low.height, 1.0);
  EXPECT_EQ(low.qp, std::min(60, raw_qp + 11 * enc.resolution_step()));
}

TEST(EncoderTest, SizeTracksTargetRate) {
  Encoder::Config c;
  c.size_jitter = 0.0;
  c.adapt_resolution = false;
  Encoder enc(c, Random(1));
  enc.Encode(MakeRaw(0));  // keyframe out of the way

  enc.SetTargetRate(DataRate::MegabitsPerSec(3.0));
  const EncodedFrame low = enc.Encode(MakeRaw(1));
  enc.SetTargetRate(DataRate::MegabitsPerSec(9.0));
  const EncodedFrame high = enc.Encode(MakeRaw(2));
  EXPECT_NEAR(static_cast<double>(high.size_bytes) / low.size_bytes, 3.0, 0.5);
  EXPECT_LT(high.qp, low.qp);
}

TEST(EncoderTest, KeyframesAreLarger) {
  Encoder::Config c;
  c.size_jitter = 0.0;
  c.keyframe_size_factor = 4.0;
  Encoder enc(c, Random(1));
  enc.SetTargetRate(DataRate::MegabitsPerSec(6.0));
  const EncodedFrame key = enc.Encode(MakeRaw(0));
  const EncodedFrame delta = enc.Encode(MakeRaw(1));
  EXPECT_NEAR(static_cast<double>(key.size_bytes) / delta.size_bytes, 4.0, 0.5);
}

TEST(EncoderTest, RateClampedToConfiguredRange) {
  Encoder::Config c;
  c.min_rate = DataRate::KilobitsPerSec(100);
  c.max_rate = DataRate::MegabitsPerSec(5);
  Encoder enc(c, Random(1));
  enc.SetTargetRate(DataRate::MegabitsPerSec(50));
  EXPECT_EQ(enc.target_rate(), DataRate::MegabitsPerSec(5));
  enc.SetTargetRate(DataRate::BitsPerSec(1));
  EXPECT_EQ(enc.target_rate(), DataRate::KilobitsPerSec(100));
}

TEST(EncoderTest, LayeredSingleConfigIsExactlyLegacyEncode) {
  // 1 rung / 1 temporal layer must reproduce Encode() bit-for-bit,
  // including the RNG draw sequence — this is what keeps every unlayered
  // pipeline byte-identical when it routes through EncodeLayered.
  Encoder legacy({}, Random(7));
  Encoder layered({}, Random(7));
  legacy.SetTargetRate(DataRate::MegabitsPerSec(2.0));
  layered.SetTargetRate(DataRate::MegabitsPerSec(2.0));
  for (int64_t n = 0; n < 20; ++n) {
    if (n == 9) {
      legacy.RequestKeyframe();
      layered.RequestKeyframe();
    }
    const EncodedFrame a = legacy.Encode(MakeRaw(n));
    const std::vector<EncodedFrame> b = layered.EncodeLayered(MakeRaw(n));
    ASSERT_EQ(b.size(), 1u);
    EXPECT_EQ(b[0].frame_id, a.frame_id);
    EXPECT_EQ(b[0].kind, a.kind);
    EXPECT_EQ(b[0].size_bytes, a.size_bytes);
    EXPECT_EQ(b[0].qp, a.qp);
    EXPECT_EQ(b[0].width, a.width);
    EXPECT_EQ(b[0].spatial_id, 0);
    EXPECT_EQ(b[0].num_spatial, 1);
  }
}

TEST(EncoderTest, SimulcastRungsShareFrameIdAndKeyTogether) {
  Encoder::Config c;
  c.simulcast_rungs = 3;
  c.size_jitter = 0.0;
  Encoder enc(c, Random(3));
  enc.SetTargetRate(DataRate::MegabitsPerSec(3.0));

  RawFrame raw = MakeRaw(0);
  raw.width = 1280;
  raw.height = 720;
  const std::vector<EncodedFrame> key = enc.EncodeLayered(raw);
  ASSERT_EQ(key.size(), 3u);
  for (int k = 0; k < 3; ++k) {
    EXPECT_EQ(key[static_cast<size_t>(k)].frame_id, 0);
    EXPECT_EQ(key[static_cast<size_t>(k)].kind, FrameKind::kKey);
    EXPECT_EQ(key[static_cast<size_t>(k)].spatial_id, k);
    EXPECT_EQ(key[static_cast<size_t>(k)].num_spatial, 3);
    EXPECT_EQ(key[static_cast<size_t>(k)].width, 1280 >> k);
  }
  // One keyframe event, not three.
  EXPECT_EQ(enc.keyframes_encoded(), 1);

  // Rung sizes follow the 4^-k rate split (jitter disabled), and every
  // rung of a later capture shares the next frame_id.
  EXPECT_GT(key[0].size_bytes, key[1].size_bytes);
  EXPECT_GT(key[1].size_bytes, key[2].size_bytes);
  const std::vector<EncodedFrame> delta = enc.EncodeLayered(MakeRaw(1));
  ASSERT_EQ(delta.size(), 3u);
  for (const EncodedFrame& f : delta) {
    EXPECT_EQ(f.frame_id, 1);
    EXPECT_EQ(f.kind, FrameKind::kDelta);
    EXPECT_EQ(f.gop_id, 0);
  }
  // A mid-GOP keyframe request keys EVERY rung of the same capture — the
  // decodable boundary a hub rung switch commits at.
  enc.RequestKeyframe();
  const std::vector<EncodedFrame> rekey = enc.EncodeLayered(MakeRaw(2));
  for (const EncodedFrame& f : rekey) {
    EXPECT_EQ(f.kind, FrameKind::kKey);
    EXPECT_EQ(f.gop_id, 1);
  }
}

TEST(EncoderTest, TemporalIdsFollowDyadicPattern) {
  Encoder::Config c;
  c.temporal_layers = 3;
  Encoder enc(c, Random(4));
  // T=3: period-4 pattern [0, 2, 1, 2] from each keyframe.
  const int expected[] = {0, 2, 1, 2, 0, 2, 1, 2};
  for (int64_t n = 0; n < 8; ++n) {
    const std::vector<EncodedFrame> out = enc.EncodeLayered(MakeRaw(n));
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0].temporal_id, expected[n]) << "frame " << n;
    EXPECT_EQ(out[0].num_temporal, 3);
  }
  // A keyframe restarts the GOP, so the pattern restarts at tid 0.
  enc.RequestKeyframe();
  const std::vector<EncodedFrame> key = enc.EncodeLayered(MakeRaw(8));
  EXPECT_EQ(key[0].temporal_id, 0);
  const std::vector<EncodedFrame> next = enc.EncodeLayered(MakeRaw(9));
  EXPECT_EQ(next[0].temporal_id, 2);
}

TEST(PacketizerTest, CarriesLayerMetadataOntoEveryPacket) {
  Packetizer pkt({.ssrc = 0x42});
  EncodedFrame frame;
  frame.kind = FrameKind::kKey;
  frame.size_bytes = 2500;
  frame.frame_id = 7;
  frame.spatial_id = 1;
  frame.num_spatial = 3;
  frame.temporal_id = 2;
  frame.num_temporal = 3;
  const auto packets = pkt.Packetize(frame);
  ASSERT_FALSE(packets.empty());
  for (const auto& p : packets) {
    EXPECT_EQ(p.spatial_id, 1);
    EXPECT_EQ(p.num_spatial, 3);
    EXPECT_EQ(p.temporal_id, 2);
    EXPECT_EQ(p.num_temporal, 3);
  }
}

TEST(QualityTest, QpMonotoneInBudget) {
  const int qp_rich = QpForBudget(400000, 1280, 720);
  const int qp_poor = QpForBudget(40000, 1280, 720);
  EXPECT_LT(qp_rich, qp_poor);
  EXPECT_GE(qp_rich, kMinQp);
  EXPECT_LE(qp_poor, kMaxQp);
}

TEST(QualityTest, QpEdgeCases) {
  EXPECT_EQ(QpForBudget(0, 1280, 720), kMaxQp);
  EXPECT_EQ(QpForBudget(1e12, 1280, 720), kMinQp);
}

TEST(QualityTest, PsnrDecreasesWithQp) {
  EXPECT_GT(PsnrForQp(20), PsnrForQp(40));
  EXPECT_GE(PsnrForQp(60), 18.0);
}

TEST(PacketizerTest, KeyframeLayout) {
  Packetizer pkt({.ssrc = 0x42});
  EncodedFrame frame;
  frame.kind = FrameKind::kKey;
  frame.size_bytes = 2500;
  frame.frame_id = 7;
  frame.gop_id = 3;
  const auto packets = pkt.Packetize(frame);
  // SPS + PPS + ceil(2500/1100)=3 media.
  ASSERT_EQ(packets.size(), 5u);
  EXPECT_EQ(packets[0].kind, PayloadKind::kSps);
  EXPECT_EQ(packets[0].priority, Priority::kSps);
  EXPECT_EQ(packets[1].kind, PayloadKind::kPps);
  EXPECT_EQ(packets[1].priority, Priority::kPps);
  for (size_t i = 2; i < packets.size(); ++i) {
    EXPECT_EQ(packets[i].kind, PayloadKind::kMedia);
    EXPECT_EQ(packets[i].priority, Priority::kKeyframe);
    EXPECT_EQ(packets[i].frame_kind, FrameKind::kKey);
  }
  EXPECT_TRUE(packets.front().first_in_frame);
  EXPECT_TRUE(packets.back().marker);
  EXPECT_TRUE(packets.back().last_in_frame);
  // Contiguous sequence numbers.
  for (size_t i = 1; i < packets.size(); ++i) {
    EXPECT_EQ(packets[i].seq, packets[i - 1].seq + 1);
  }
  // Payload adds up.
  int64_t media = 0;
  for (const auto& p : packets) {
    if (p.kind == PayloadKind::kMedia) media += p.payload_bytes;
  }
  EXPECT_EQ(media, 2500);
}

TEST(PacketizerTest, DeltaFrameHasNoSps) {
  Packetizer pkt({});
  EncodedFrame frame;
  frame.kind = FrameKind::kDelta;
  frame.size_bytes = 1000;
  const auto packets = pkt.Packetize(frame);
  ASSERT_EQ(packets.size(), 2u);  // PPS + 1 media
  EXPECT_EQ(packets[0].kind, PayloadKind::kPps);
  EXPECT_EQ(packets[1].priority, Priority::kNone);
}

TEST(PacketizerTest, SequenceSpaceSharedAcrossFrames) {
  Packetizer pkt({});
  EncodedFrame a;
  a.kind = FrameKind::kDelta;
  a.size_bytes = 1000;
  const auto pa = pkt.Packetize(a);
  const auto pb = pkt.Packetize(a);
  EXPECT_EQ(pb.front().seq, pa.back().seq + 1);
}

TEST(DecoderTest, DecodesContinuousChain) {
  EventLoop loop;
  std::vector<int64_t> rendered;
  Decoder dec(
      &loop, {}, [&](const DecodedFrame& f) { rendered.push_back(f.frame_id); },
      nullptr);
  for (int64_t i = 0; i < 5; ++i) {
    AssembledFrame f;
    f.frame_id = i;
    f.gop_id = 0;
    f.kind = i == 0 ? FrameKind::kKey : FrameKind::kDelta;
    dec.Decode(f);
  }
  loop.RunAll();
  EXPECT_EQ(rendered, (std::vector<int64_t>{0, 1, 2, 3, 4}));
  EXPECT_EQ(dec.decode_failures(), 0);
}

TEST(DecoderTest, BrokenChainFailsUntilKeyframe) {
  EventLoop loop;
  int failures = 0;
  std::vector<int64_t> rendered;
  Decoder dec(
      &loop, {}, [&](const DecodedFrame& f) { rendered.push_back(f.frame_id); },
      [&](const AssembledFrame&) { ++failures; });

  AssembledFrame key;
  key.frame_id = 0;
  key.gop_id = 0;
  key.kind = FrameKind::kKey;
  dec.Decode(key);

  AssembledFrame gap;  // frame 2 without frame 1
  gap.frame_id = 2;
  gap.gop_id = 0;
  gap.kind = FrameKind::kDelta;
  dec.Decode(gap);
  EXPECT_EQ(failures, 1);

  AssembledFrame next;  // even the next consecutive delta is undecodable now
  next.frame_id = 3;
  next.gop_id = 0;
  next.kind = FrameKind::kDelta;
  dec.Decode(next);
  EXPECT_EQ(failures, 2);

  AssembledFrame key2;  // a new keyframe recovers
  key2.frame_id = 4;
  key2.gop_id = 1;
  key2.kind = FrameKind::kKey;
  dec.Decode(key2);
  loop.RunAll();
  EXPECT_EQ(rendered, (std::vector<int64_t>{0, 4}));
}

TEST(DecoderTest, FecRecoveryAddsLatency) {
  EventLoop loop;
  Duration e2e_plain, e2e_fec;
  Decoder::Config c;
  c.base_decode_time = Duration::Millis(3);
  c.fec_recovery_penalty = Duration::Millis(2);
  int calls = 0;
  Decoder dec(
      &loop, c,
      [&](const DecodedFrame& f) {
        if (calls++ == 0) {
          e2e_plain = f.e2e_latency;
        } else {
          e2e_fec = f.e2e_latency;
        }
      },
      nullptr);

  AssembledFrame a;
  a.frame_id = 0;
  a.gop_id = 0;
  a.kind = FrameKind::kKey;
  a.capture_time = Timestamp::Zero();
  dec.Decode(a);

  AssembledFrame b;
  b.frame_id = 1;
  b.gop_id = 0;
  b.kind = FrameKind::kDelta;
  b.capture_time = Timestamp::Zero();
  b.recovered_by_fec = 3;
  dec.Decode(b);
  loop.RunAll();
  EXPECT_EQ(e2e_fec - e2e_plain, Duration::Millis(6));
}

}  // namespace
}  // namespace converge
