// Chaos stress suite: randomized fault plans hammering short calls across
// seeds × schedulers × mobility scenarios, with the runtime invariant
// harness armed. The promise under test is not any particular QoE number —
// it is that no component invariant breaks and the event loop never stalls,
// whatever the fault plan throws at the stack. On failure the violation log
// is written to $CONVERGE_INVARIANT_LOG (default invariant_violations.log)
// so CI can attach it as an artifact.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <string>
#include <vector>

#include "net/fault_plan.h"
#include "net/loss_model.h"
#include "session/call.h"
#include "trace/generators.h"
#include "util/invariants.h"
#include "util/random.h"

namespace converge {
namespace {

constexpr int kSeedsPerCell = 20;

void DumpViolationsIfAny() {
  if (InvariantRegistry::violation_count() == 0) return;
  const char* env = std::getenv("CONVERGE_INVARIANT_LOG");
  const std::string path = env != nullptr ? env : "invariant_violations.log";
  InvariantRegistry::WriteLog(path);
}

CallConfig ChaosCall(Scenario scenario, Variant variant, uint64_t seed) {
  TraceParams params;
  params.length = Duration::Seconds(8);
  CallConfig config;
  config.variant = variant;
  config.paths = MakeScenarioPaths(scenario, seed, params);
  config.duration = Duration::Seconds(8);
  config.seed = seed;

  // Scripted chaos on top of the organic trace: a random plan on the
  // primary data link, and (for some seeds) jitter on the feedback link so
  // RTCP starvation is exercised too.
  Random rng(seed * 7919 + static_cast<uint64_t>(variant) * 131 +
             static_cast<uint64_t>(scenario));
  config.paths.front().fault_plan = MakeRandomFaultPlan(rng, config.duration);
  if (rng.Bernoulli(0.3)) {
    config.paths.front().feedback_fault_plan.Add(FaultEvent::JitterSpike(
        Timestamp::Seconds(2), Duration::Seconds(3), Duration::Millis(30)));
  }
  return config;
}

// 20 seeds × 3 schedulers × 3 scenarios of randomized faults. Calls fan out
// across cores (RunCalls); the invariant registry is process-global and
// thread-safe, so one armed scope covers the whole sweep.
TEST(ChaosStressTest, RandomPlansProduceNoInvariantViolations) {
  const Scenario scenarios[] = {Scenario::kStationary, Scenario::kWalking,
                                Scenario::kDriving};
  const Variant variants[] = {Variant::kSrtt, Variant::kMtput,
                              Variant::kConverge};
  std::vector<CallConfig> configs;
  for (Scenario sc : scenarios) {
    for (Variant v : variants) {
      for (uint64_t seed = 1; seed <= kSeedsPerCell; ++seed) {
        configs.push_back(ChaosCall(sc, v, seed));
      }
    }
  }

  ScopedInvariants guard;
  const std::vector<CallStats> results = RunCalls(configs);
  DumpViolationsIfAny();
  EXPECT_EQ(InvariantRegistry::violation_count(), 0)
      << InvariantRegistry::Describe();

  // No event-loop stall: every call must have run to its full duration
  // (per-second samples for every elapsed second) and kept encoding and
  // sending throughout whatever its plan did.
  ASSERT_EQ(results.size(), configs.size());
  for (size_t i = 0; i < results.size(); ++i) {
    const CallStats& stats = results[i];
    EXPECT_GE(stats.time_series.size(), 7u) << "call " << i;
    EXPECT_GT(stats.media_packets_sent, 0) << "call " << i;
    EXPECT_GE(stats.frames_encoded, static_cast<int64_t>(0.8 * 30.0 * 8.0))
        << "call " << i;
  }
}

// Post-outage recovery on a controlled network: constant-capacity paths, a
// scripted 2 s outage on the primary, nothing else. The aggregate delivered
// rate must regain at least half of its pre-outage average within 10 s of
// the window closing.
TEST(ChaosStressTest, ThroughputRecoversAfterOutage) {
  PathSpec primary;
  primary.capacity = BandwidthTrace::Constant(DataRate::MegabitsPerSec(6));
  primary.prop_delay = Duration::Millis(20);
  PathSpec secondary = primary;
  secondary.prop_delay = Duration::Millis(50);
  primary.fault_plan.Add(
      FaultEvent::Outage(Timestamp::Seconds(10), Duration::Seconds(2)));

  CallConfig config;
  config.variant = Variant::kConverge;
  config.paths = {primary, secondary};
  config.duration = Duration::Seconds(22);
  config.seed = 5;

  ScopedInvariants guard;
  Call call(config);
  const CallStats stats = call.Run();
  DumpViolationsIfAny();
  EXPECT_EQ(InvariantRegistry::violation_count(), 0)
      << InvariantRegistry::Describe();

  // Pre-outage baseline: mean delivered rate over seconds [5, 10). Recovery:
  // best second in (12, 22], i.e. within 10 s of the window closing.
  double pre_sum = 0.0;
  int pre_n = 0;
  double post_best = 0.0;
  for (const SecondSample& s : stats.time_series) {
    if (s.t_s >= 5 && s.t_s < 10) {
      pre_sum += s.tput_mbps;
      ++pre_n;
    }
    if (s.t_s > 12 && s.t_s <= 22) post_best = std::max(post_best, s.tput_mbps);
  }
  ASSERT_GT(pre_n, 0);
  const double pre_mean = pre_sum / pre_n;
  EXPECT_GT(pre_mean, 0.5);  // the call was actually flowing before the cut
  EXPECT_GE(post_best, 0.5 * pre_mean)
      << "pre-outage mean " << pre_mean << " Mbps, best post-outage second "
      << post_best << " Mbps";
}

}  // namespace
}  // namespace converge
