// Scheduler × congestion-controller × coupling matrix: byte-determinism of
// the full grid under parallel sharding, plus convergence envelopes for the
// non-GCC controllers (NADA, Cross) on scripted rate-cliff and outage fault
// plans — the same acceptance shape the GCC chaos suite pins: a bounded
// ramp before the fault and at least half the pre-fault delivered rate back
// within 10 s of the fault clearing.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "net/fault_plan.h"
#include "net/loss_model.h"
#include "session/call.h"
#include "session/conference.h"
#include "session/stats_json.h"
#include "util/invariants.h"

namespace converge {
namespace {

// One short duplex 2-party mesh cell of the matrix. Lossy asymmetric paths
// so every scheduler/controller actually has signals to work with.
ConferenceConfig MatrixConfig(Variant variant, CcAlgorithm algorithm,
                              CcCoupling coupling, uint64_t seed) {
  ConferenceConfig config;
  config.variant = variant;
  config.topology = Topology::kMesh;
  config.participants.assign(2, ParticipantSpec{});
  config.max_rate_per_stream = DataRate::MegabitsPerSec(4);
  config.duration = Duration::Seconds(4);
  config.seed = seed;
  config.cc_algorithm = algorithm;
  config.cc_coupling = coupling;
  auto path = [](const char* name, double mbps, int delay_ms, double loss) {
    PathSpec spec;
    spec.name = name;
    spec.capacity = BandwidthTrace::Constant(DataRate::MegabitsPerSec(mbps));
    spec.prop_delay = Duration::Millis(delay_ms);
    if (loss > 0.0) spec.loss = std::make_shared<BernoulliLoss>(loss);
    return spec;
  };
  config.paths = {path("wifi", 6.0, 20, 0.01), path("cell", 4.0, 40, 0.005)};
  return config;
}

std::vector<ConferenceConfig> FullMatrix() {
  const Variant variants[] = {Variant::kSrtt, Variant::kEcf, Variant::kMtput,
                              Variant::kConverge};
  const CcAlgorithm algorithms[] = {CcAlgorithm::kGcc, CcAlgorithm::kNada,
                                    CcAlgorithm::kCross};
  const CcCoupling couplings[] = {CcCoupling::kUncoupled, CcCoupling::kWeighted,
                                  CcCoupling::kRoundRobin,
                                  CcCoupling::kBestPath};
  std::vector<ConferenceConfig> configs;
  uint64_t seed = 1000;
  for (Variant v : variants) {
    for (CcAlgorithm a : algorithms) {
      for (CcCoupling c : couplings) {
        configs.push_back(MatrixConfig(v, a, c, seed++));
      }
    }
  }
  return configs;
}

std::vector<std::string> RunMatrixToJson(
    const std::vector<ConferenceConfig>& configs, int jobs) {
  const std::vector<ConferenceStats> results = RunConferences(configs, jobs);
  std::vector<std::string> json;
  json.reserve(results.size());
  for (const ConferenceStats& stats : results) {
    json.push_back(ConferenceStatsToJson(stats, 0));
  }
  return json;
}

// The whole 4 scheduler × 3 controller × 4 coupling grid must produce
// byte-identical serialized stats however many workers ran, and again on a
// rerun — the fleet-sharding determinism contract, extended to the new CC
// seam. Invariants stay armed: no cell may scream either.
TEST(CcMatrixTest, FullMatrixDeterministicAcrossJobsAndReruns) {
  const std::vector<ConferenceConfig> configs = FullMatrix();
  ASSERT_EQ(configs.size(), 48u);

  InvariantRegistry::Clear();
  ScopedInvariants guard;
  const std::vector<std::string> serial = RunMatrixToJson(configs, 1);
  const std::vector<std::string> sharded = RunMatrixToJson(configs, 8);
  const std::vector<std::string> rerun = RunMatrixToJson(configs, 8);
  EXPECT_EQ(InvariantRegistry::violation_count(), 0)
      << InvariantRegistry::Describe();

  ASSERT_EQ(serial.size(), configs.size());
  ASSERT_EQ(sharded.size(), configs.size());
  for (size_t i = 0; i < configs.size(); ++i) {
    EXPECT_EQ(serial[i], sharded[i])
        << "cell " << i << " (" << ToString(configs[i].variant) << " × "
        << ToString(configs[i].cc_algorithm) << " × "
        << ToString(configs[i].cc_coupling) << ") differs jobs=1 vs jobs=8";
    EXPECT_EQ(sharded[i], rerun[i])
        << "cell " << i << " (" << ToString(configs[i].variant) << " × "
        << ToString(configs[i].cc_algorithm) << " × "
        << ToString(configs[i].cc_coupling) << ") differs across reruns";
  }
}

// Every matrix cell must actually move media: a controller stuck at its
// floor (or a coupling strategy starving all paths) shows up here as a
// dead cell long before the QoE envelopes would.
TEST(CcMatrixTest, EveryCellDeliversMedia) {
  const std::vector<ConferenceConfig> configs = FullMatrix();
  const std::vector<ConferenceStats> results = RunConferences(configs, 0);
  ASSERT_EQ(results.size(), configs.size());
  for (size_t i = 0; i < results.size(); ++i) {
    double tput = 0.0;
    for (const ConferenceStats::ParticipantQoe& p : results[i].participants) {
      tput += p.total_tput_mbps;
    }
    EXPECT_GT(tput, 0.2) << "cell " << i << " ("
                         << ToString(configs[i].variant) << " × "
                         << ToString(configs[i].cc_algorithm) << " × "
                         << ToString(configs[i].cc_coupling) << ") starved";
  }
}

// --- convergence envelopes for the non-GCC controllers --------------------

CallConfig EnvelopeCall(CcAlgorithm algorithm) {
  PathSpec primary;
  primary.capacity = BandwidthTrace::Constant(DataRate::MegabitsPerSec(6));
  primary.prop_delay = Duration::Millis(20);
  PathSpec secondary = primary;
  secondary.prop_delay = Duration::Millis(50);
  CallConfig config;
  config.variant = Variant::kConverge;
  config.paths = {primary, secondary};
  config.duration = Duration::Seconds(22);
  config.seed = 5;
  config.cc_algorithm = algorithm;
  return config;
}

// Mirrors ChaosStressTest.ThroughputRecoversAfterOutage for a given
// controller: 2 s outage on the primary at t=10; the delivered rate must be
// flowing before the cut and regain >= 50% of the pre-outage mean within
// 10 s of the window closing. Invariants armed throughout.
void CheckOutageRecovery(CcAlgorithm algorithm) {
  CallConfig config = EnvelopeCall(algorithm);
  config.paths.front().fault_plan.Add(
      FaultEvent::Outage(Timestamp::Seconds(10), Duration::Seconds(2)));

  InvariantRegistry::Clear();
  ScopedInvariants guard;
  Call call(config);
  const CallStats stats = call.Run();
  EXPECT_EQ(InvariantRegistry::violation_count(), 0)
      << InvariantRegistry::Describe();

  double pre_sum = 0.0;
  int pre_n = 0;
  double post_best = 0.0;
  for (const SecondSample& s : stats.time_series) {
    if (s.t_s >= 5 && s.t_s < 10) {
      pre_sum += s.tput_mbps;
      ++pre_n;
    }
    if (s.t_s > 12 && s.t_s <= 22) post_best = std::max(post_best, s.tput_mbps);
  }
  ASSERT_GT(pre_n, 0);
  const double pre_mean = pre_sum / pre_n;
  EXPECT_GT(pre_mean, 0.5) << ToString(algorithm)
                           << ": not flowing before the outage";
  EXPECT_GE(post_best, 0.5 * pre_mean)
      << ToString(algorithm) << ": pre-outage mean " << pre_mean
      << " Mbps, best post-outage second " << post_best << " Mbps";
}

// Rate cliff instead of a full cut: the primary loses 75% of its capacity
// for 4 s. The ramp must be bounded (no second ever above the 2x-goodput
// ceiling headroom over the physical capacity) and the call must be back to
// >= 50% of its pre-cliff mean within 10 s of the cliff ending.
void CheckRateCliffConvergence(CcAlgorithm algorithm) {
  CallConfig config = EnvelopeCall(algorithm);
  config.paths.front().fault_plan.Add(
      FaultEvent::RateCliff(Timestamp::Seconds(10), Duration::Seconds(4),
                            /*fraction=*/0.25));

  InvariantRegistry::Clear();
  ScopedInvariants guard;
  Call call(config);
  const CallStats stats = call.Run();
  EXPECT_EQ(InvariantRegistry::violation_count(), 0)
      << InvariantRegistry::Describe();

  double pre_sum = 0.0;
  int pre_n = 0;
  double post_best = 0.0;
  for (const SecondSample& s : stats.time_series) {
    // Bounded ramp: both paths total 12 Mbps of physical capacity; no
    // delivered second can exceed it (with a little headroom for sampling
    // edges). A controller running away unchecked trips this long before.
    EXPECT_LT(s.tput_mbps, 13.0)
        << ToString(algorithm) << ": second " << s.t_s << " delivered "
        << s.tput_mbps << " Mbps over physical capacity";
    if (s.t_s >= 5 && s.t_s < 10) {
      pre_sum += s.tput_mbps;
      ++pre_n;
    }
    if (s.t_s > 14 && s.t_s <= 22) post_best = std::max(post_best, s.tput_mbps);
  }
  ASSERT_GT(pre_n, 0);
  const double pre_mean = pre_sum / pre_n;
  EXPECT_GT(pre_mean, 0.5) << ToString(algorithm)
                           << ": not flowing before the cliff";
  EXPECT_GE(post_best, 0.5 * pre_mean)
      << ToString(algorithm) << ": pre-cliff mean " << pre_mean
      << " Mbps, best post-cliff second " << post_best << " Mbps";
}

TEST(CcMatrixTest, NadaRecoversAfterOutage) {
  CheckOutageRecovery(CcAlgorithm::kNada);
}

TEST(CcMatrixTest, CrossRecoversAfterOutage) {
  CheckOutageRecovery(CcAlgorithm::kCross);
}

TEST(CcMatrixTest, NadaConvergesThroughRateCliff) {
  CheckRateCliffConvergence(CcAlgorithm::kNada);
}

TEST(CcMatrixTest, CrossConvergesThroughRateCliff) {
  CheckRateCliffConvergence(CcAlgorithm::kCross);
}

}  // namespace
}  // namespace converge
