// Flight-recorder trace layer: ring semantics, zero observable effect on
// simulation results, Chrome-trace export sanity, and the invariant-harness
// hookup that dumps the recorder tail on a violation.
#include <gtest/gtest.h>

#include <algorithm>
#include <cctype>
#include <fstream>
#include <iterator>
#include <limits>
#include <set>
#include <string>
#include <vector>

#include "session/call.h"
#include "session/stats_json.h"
#include "trace/generators.h"
#include "util/invariants.h"
#include "util/trace_recorder.h"

namespace converge {
namespace {

TEST(TraceRecorderTest, StoresEventsInOrder) {
  TraceRecorder recorder(16);
  recorder.Counter("gcc", "target_kbps", Timestamp::Millis(10), 300.0, 0);
  recorder.Instant("nack", "batch", Timestamp::Millis(20), 3.0, 1, -1, 7.0);
  ASSERT_EQ(recorder.size(), 2u);
  EXPECT_EQ(recorder.total_emitted(), 2);
  EXPECT_EQ(recorder.dropped(), 0);

  const std::vector<TraceEvent> events = recorder.Snapshot();
  EXPECT_STREQ(events[0].component, "gcc");
  EXPECT_STREQ(events[0].name, "target_kbps");
  EXPECT_EQ(events[0].at_us, 10'000);
  EXPECT_EQ(events[0].kind, TraceKind::kCounter);
  EXPECT_EQ(events[0].path, 0);
  EXPECT_DOUBLE_EQ(events[0].value, 300.0);
  EXPECT_EQ(events[1].kind, TraceKind::kInstant);
  EXPECT_DOUBLE_EQ(events[1].value2, 7.0);
}

TEST(TraceRecorderTest, RingOverwritesOldestAtCapacity) {
  TraceRecorder recorder(4);
  for (int i = 0; i < 10; ++i) {
    recorder.Counter("c", "v", Timestamp::Millis(i), static_cast<double>(i));
  }
  EXPECT_EQ(recorder.capacity(), 4u);
  EXPECT_EQ(recorder.size(), 4u);
  EXPECT_EQ(recorder.total_emitted(), 10);
  EXPECT_EQ(recorder.dropped(), 6);

  // Snapshot is the newest 4 events, oldest first.
  const std::vector<TraceEvent> events = recorder.Snapshot();
  ASSERT_EQ(events.size(), 4u);
  for (int i = 0; i < 4; ++i) {
    EXPECT_DOUBLE_EQ(events[static_cast<size_t>(i)].value,
                     static_cast<double>(6 + i));
  }
}

TEST(TraceRecorderTest, ClocklessEventsInheritNewestSimTime) {
  TraceRecorder recorder(8);
  recorder.Counter("gcc", "target_kbps", Timestamp::Millis(50), 1.0);
  // A clock-less component (FEC controller) emits with MinusInfinity.
  recorder.Counter("fec", "beta", Timestamp::MinusInfinity(), 1.5, 0);
  const std::vector<TraceEvent> events = recorder.Snapshot();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[1].at_us, 50'000);  // inherited, not -inf garbage
}

TEST(TraceRecorderTest, CurrentIsNullWithoutScopeAndRestoredAfter) {
  EXPECT_EQ(TraceRecorder::Current(), nullptr);
  TraceRecorder recorder(8);
  {
    TraceScope scope(&recorder);
    EXPECT_EQ(TraceRecorder::Current(), &recorder);
    {
      TraceRecorder inner(8);
      TraceScope nested(&inner);
      EXPECT_EQ(TraceRecorder::Current(), &inner);
    }
    EXPECT_EQ(TraceRecorder::Current(), &recorder);
  }
  EXPECT_EQ(TraceRecorder::Current(), nullptr);
}

TEST(TraceRecorderTest, CsvHasHeaderAndOneRowPerEvent) {
  TraceRecorder recorder(8);
  recorder.Counter("pacer", "queue_pkts", Timestamp::Millis(5), 3.0, 1);
  recorder.Instant("qoe", "negative_verdict", Timestamp::Millis(6), -2.0, 0);
  const std::string csv = recorder.Csv();
  EXPECT_EQ(static_cast<size_t>(std::count(csv.begin(), csv.end(), '\n')), 3u);
  EXPECT_NE(
      csv.find("t_ms,component,name,kind,participant,path,stream,value,value2"),
      std::string::npos);
  EXPECT_NE(csv.find("5.000,pacer,queue_pkts,counter,-1,1,-1,3,0"),
            std::string::npos);
  EXPECT_NE(csv.find("qoe,negative_verdict,instant"), std::string::npos);
}

// Minimal structural JSON check (no parser dependency): balanced braces
// outside strings, and the exact Chrome trace envelope.
void ExpectBalancedJson(const std::string& json) {
  int depth = 0;
  bool in_string = false;
  for (size_t i = 0; i < json.size(); ++i) {
    const char c = json[i];
    if (in_string) {
      if (c == '\\') {
        ++i;
      } else if (c == '"') {
        in_string = false;
      }
      continue;
    }
    if (c == '"') in_string = true;
    if (c == '{' || c == '[') ++depth;
    if (c == '}' || c == ']') --depth;
    ASSERT_GE(depth, 0) << "unbalanced at offset " << i;
  }
  EXPECT_FALSE(in_string);
  EXPECT_EQ(depth, 0);
}

// Pulls every `"ts":<n>` value out of the trace JSON, in document order.
std::vector<int64_t> ExtractTimestamps(const std::string& json) {
  std::vector<int64_t> out;
  const std::string key = "\"ts\":";
  size_t pos = 0;
  while ((pos = json.find(key, pos)) != std::string::npos) {
    pos += key.size();
    int64_t v = 0;
    bool neg = false;
    if (pos < json.size() && json[pos] == '-') {
      neg = true;
      ++pos;
    }
    while (pos < json.size() && std::isdigit(static_cast<unsigned char>(json[pos]))) {
      v = v * 10 + (json[pos] - '0');
      ++pos;
    }
    out.push_back(neg ? -v : v);
  }
  return out;
}

CallConfig TracedDrivingCall() {
  TraceParams params;
  params.length = Duration::Seconds(12);
  CallConfig config;
  config.variant = Variant::kConverge;
  config.paths = MakeScenarioPathsWithFaults(Scenario::kDriving, 3, params);
  config.duration = Duration::Seconds(12);
  config.seed = 3;
  return config;
}

// The acceptance bar for the exporter: a scenario run's Chrome-trace JSON is
// structurally valid, time-ordered, and contains events from at least six
// distinct components.
TEST(TraceRecorderTest, ScenarioRunExportsOrderedMultiComponentTrace) {
  CallConfig config = TracedDrivingCall();
  config.trace_capacity = TraceRecorder::kDefaultCapacity;
  Call call(config);
  call.Run();
  TraceRecorder* trace = call.trace();
  ASSERT_NE(trace, nullptr);
  EXPECT_GT(trace->total_emitted(), 1000);

  std::set<std::string> components;
  const std::vector<TraceEvent> events = trace->Snapshot();
  int64_t prev = std::numeric_limits<int64_t>::min();
  for (const TraceEvent& e : events) {
    components.insert(e.component);
    EXPECT_GE(e.at_us, prev);  // the timeline is monotone
    prev = e.at_us;
  }
  EXPECT_GE(components.size(), 6u)
      << "components traced: " << components.size();
  for (const char* expected :
       {"gcc", "pacer", "scheduler", "fec", "nack", "qoe"}) {
    EXPECT_TRUE(components.count(expected)) << expected << " missing";
  }

  const std::string json = trace->ChromeTraceJson();
  EXPECT_EQ(json.rfind("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[", 0), 0u);
  ExpectBalancedJson(json);
  const std::vector<int64_t> ts = ExtractTimestamps(json);
  ASSERT_EQ(ts.size(), events.size());
  EXPECT_TRUE(std::is_sorted(ts.begin(), ts.end()));
}

// Tracing must be purely observational: the same call with the recorder on
// and off produces byte-identical exported stats.
TEST(TraceRecorderTest, StatsJsonByteIdenticalWithTracingOnAndOff) {
  CallConfig off = TracedDrivingCall();
  CallConfig on = TracedDrivingCall();
  on.trace_capacity = 1 << 14;

  Call call_off(off);
  const std::string json_off = CallStatsToJson(call_off.Run());
  Call call_on(on);
  const std::string json_on = CallStatsToJson(call_on.Run());

  EXPECT_GT(call_on.trace()->total_emitted(), 0);
  EXPECT_EQ(json_off, json_on);
}

// A violation while tracing captures the recorder's tail into the registry:
// Describe() and the CI log both ship the recent component history.
TEST(TraceRecorderTest, InvariantViolationDumpsFlightRecorderTail) {
  ScopedInvariants guard;
  TraceRecorder recorder(64);
  TraceScope scope(&recorder);
  recorder.Counter("gcc", "target_kbps", Timestamp::Millis(1), 450.0, 0);
  recorder.Counter("pacer", "queue_pkts", Timestamp::Millis(2), 12.0, 0);

  CONVERGE_INVARIANT("TestComponent", Timestamp::Millis(3), 1 + 1 == 3,
                     std::string("forced"));
  ASSERT_EQ(InvariantRegistry::violation_count(), 1);

  const std::string tail = InvariantRegistry::FlightRecorderTail();
  EXPECT_NE(tail.find("flight recorder tail"), std::string::npos);
  EXPECT_NE(tail.find("gcc.target_kbps"), std::string::npos);
  EXPECT_NE(tail.find("pacer.queue_pkts"), std::string::npos);
  EXPECT_NE(InvariantRegistry::Describe().find("flight recorder tail"),
            std::string::npos);

  const std::string log_path =
      testing::TempDir() + "/trace_invariant_dump.log";
  ASSERT_TRUE(InvariantRegistry::WriteLog(log_path));
  std::ifstream log(log_path);
  const std::string contents((std::istreambuf_iterator<char>(log)),
                             std::istreambuf_iterator<char>());
  EXPECT_NE(contents.find("flight recorder tail"), std::string::npos);
  EXPECT_NE(contents.find("gcc.target_kbps"), std::string::npos);

  // Clear() resets the captured tail along with the violations.
  InvariantRegistry::Clear();
  EXPECT_TRUE(InvariantRegistry::FlightRecorderTail().empty());
}

// Without a recorder installed, a violation stores no tail — and the
// violation path itself keeps working.
TEST(TraceRecorderTest, ViolationWithoutRecorderHasNoTail) {
  ScopedInvariants guard;
  CONVERGE_INVARIANT("TestComponent", Timestamp::Millis(1), false,
                     std::string("forced"));
  EXPECT_EQ(InvariantRegistry::violation_count(), 1);
  EXPECT_TRUE(InvariantRegistry::FlightRecorderTail().empty());
}

TEST(TraceRecorderTest, ParticipantScopeTagsEventsAndSeriesNames) {
  TraceRecorder recorder(8);
  recorder.Counter("gcc", "target_kbps", Timestamp::Millis(1), 500.0, 1);
  {
    TraceParticipantScope scope(2);
    EXPECT_EQ(TraceRecorder::CurrentParticipant(), 2);
    recorder.Counter("gcc", "target_kbps", Timestamp::Millis(2), 600.0, 1);
  }
  EXPECT_EQ(TraceRecorder::CurrentParticipant(), -1);
  recorder.Counter("gcc", "target_kbps", Timestamp::Millis(3), 700.0, 1);

  const std::vector<TraceEvent> events = recorder.Snapshot();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0].participant, -1);
  EXPECT_EQ(events[1].participant, 2);
  EXPECT_EQ(events[2].participant, -1);

  // Tagged events get their own Perfetto series; untagged events keep the
  // historical point-to-point names.
  const std::string json = recorder.ChromeTraceJson();
  EXPECT_NE(json.find("\"gcc.target_kbps.P2.p1\""), std::string::npos);
  EXPECT_NE(json.find("\"gcc.target_kbps.p1\""), std::string::npos);

  const std::string csv = recorder.Csv();
  EXPECT_NE(csv.find("2.000,gcc,target_kbps,counter,2,1,-1,600,0"),
            std::string::npos);
}

TEST(TraceRecorderTest, DescribeTailShowsNewestEventsLast) {
  TraceRecorder recorder(128);
  for (int i = 0; i < 100; ++i) {
    recorder.Counter("c", "v", Timestamp::Millis(i), static_cast<double>(i));
  }
  const std::string tail = recorder.DescribeTail(5);
  EXPECT_NE(tail.find("5 of 100 events"), std::string::npos);
  EXPECT_EQ(tail.find("value=94"), std::string::npos);  // older than the tail
  EXPECT_NE(tail.find("value=95"), std::string::npos);
  EXPECT_NE(tail.find("value=99"), std::string::npos);
}

}  // namespace
}  // namespace converge
