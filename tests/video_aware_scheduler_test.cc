#include <gtest/gtest.h>

#include "core/video_aware_scheduler.h"

namespace converge {
namespace {

PathInfo MakePath(PathId id, double rate_mbps, double srtt_ms,
                  double loss = 0.0) {
  PathInfo p;
  p.id = id;
  p.allocated_rate = DataRate::MegabitsPerSec(rate_mbps);
  p.goodput = DataRate::MegabitsPerSec(rate_mbps);
  p.srtt = Duration::Millis(static_cast<int64_t>(srtt_ms));
  p.loss = loss;
  return p;
}

// A frame with SPS + PPS + keyframe media, or PPS + delta media.
std::vector<RtpPacket> MakeFrame(FrameKind kind, int media) {
  std::vector<RtpPacket> out;
  uint16_t seq = 0;
  auto push = [&](PayloadKind k, Priority prio) {
    RtpPacket p;
    p.seq = seq++;
    p.kind = k;
    p.priority = prio;
    p.frame_kind = kind;
    p.payload_bytes = k == PayloadKind::kMedia ? 1100 : 30;
    out.push_back(p);
  };
  if (kind == FrameKind::kKey) push(PayloadKind::kSps, Priority::kSps);
  push(PayloadKind::kPps, Priority::kPps);
  for (int i = 0; i < media; ++i) {
    push(PayloadKind::kMedia,
         kind == FrameKind::kKey ? Priority::kKeyframe : Priority::kNone);
  }
  return out;
}

std::map<PathId, int> CountByPath(const std::vector<PathId>& assignment) {
  std::map<PathId, int> counts;
  for (PathId id : assignment) ++counts[id];
  return counts;
}

TEST(VideoAwareSchedulerTest, KeyframePacketsRideFastPath) {
  VideoAwareScheduler sched;
  // Path 1 is clearly faster (higher rate, lower RTT).
  const std::vector<PathInfo> paths = {MakePath(0, 5, 120), MakePath(1, 20, 30)};
  const auto frame = MakeFrame(FrameKind::kKey, 10);
  const auto assignment = sched.AssignFrame(frame, paths);
  EXPECT_EQ(sched.last_fast_path(), 1);
  for (size_t i = 0; i < frame.size(); ++i) {
    if (frame[i].IsDecodingCritical()) {
      EXPECT_EQ(assignment[i], 1) << "critical packet " << i << " off fast path";
    }
  }
}

TEST(VideoAwareSchedulerTest, PpsSpsOnFastPathForDeltaFrames) {
  VideoAwareScheduler sched;
  const std::vector<PathInfo> paths = {MakePath(0, 15, 30), MakePath(1, 5, 90)};
  const auto frame = MakeFrame(FrameKind::kDelta, 20);
  const auto assignment = sched.AssignFrame(frame, paths);
  EXPECT_EQ(assignment[0], 0);  // PPS on fast path
  // Delta media is split across both paths.
  const auto counts = CountByPath(assignment);
  EXPECT_GT(counts.count(1) ? counts.at(1) : 0, 0);
}

TEST(VideoAwareSchedulerTest, MediaSplitFollowsEq1) {
  VideoAwareScheduler sched;
  const std::vector<PathInfo> paths = {MakePath(0, 15, 50), MakePath(1, 5, 50)};
  const auto frame = MakeFrame(FrameKind::kDelta, 40);
  const auto counts = CountByPath(sched.AssignFrame(frame, paths));
  // 15:5 split of 40 media (+1 PPS) => roughly 30:10.
  EXPECT_NEAR(counts.at(0), 31, 3);
  EXPECT_NEAR(counts.at(1), 10, 3);
}

TEST(VideoAwareSchedulerTest, MediaAssignedInContiguousBlocks) {
  VideoAwareScheduler sched;
  const std::vector<PathInfo> paths = {MakePath(0, 10, 50), MakePath(1, 10, 60)};
  const auto frame = MakeFrame(FrameKind::kDelta, 30);
  const auto assignment = sched.AssignFrame(frame, paths);
  // Count path switches among media packets: contiguous blocks mean few.
  int switches = 0;
  for (size_t i = 2; i < assignment.size(); ++i) {
    if (assignment[i] != assignment[i - 1]) ++switches;
  }
  EXPECT_LE(switches, 2);
}

TEST(VideoAwareSchedulerTest, NegativeAlphaShrinksPath) {
  VideoAwareScheduler sched;
  const std::vector<PathInfo> paths = {MakePath(0, 10, 50), MakePath(1, 10, 55)};
  const auto frame = MakeFrame(FrameKind::kDelta, 40);
  const auto before = CountByPath(sched.AssignFrame(frame, paths));

  QoeFeedback fb;
  fb.path_id = 1;
  fb.alpha = -8;
  fb.fcd = Duration::Millis(20);
  sched.OnQoeFeedback(fb);
  EXPECT_NEAR(sched.alpha(1), -8.0, 1e-9);

  const auto after = CountByPath(sched.AssignFrame(frame, paths));
  EXPECT_LT(after.count(1) ? after.at(1) : 0, before.at(1));
  // The removed packets moved to the other path, none were dropped.
  int total = 0;
  for (const auto& [id, n] : after) total += n;
  EXPECT_EQ(total, static_cast<int>(frame.size()));
}

TEST(VideoAwareSchedulerTest, RepeatedNegativeFeedbackDisablesPath) {
  VideoAwareScheduler sched;
  const std::vector<PathInfo> paths = {MakePath(0, 10, 50), MakePath(1, 2, 55)};
  const auto frame = MakeFrame(FrameKind::kDelta, 20);

  QoeFeedback fb;
  fb.path_id = 1;
  fb.alpha = -30;
  fb.fcd = Duration::Millis(5);
  sched.OnQoeFeedback(fb);
  sched.AssignFrame(frame, paths);  // path 1 target hits zero -> disabled
  EXPECT_FALSE(sched.IsPathActive(1));
  EXPECT_TRUE(sched.IsPathActive(0));

  // All packets now go to path 0.
  const auto counts = CountByPath(sched.AssignFrame(frame, paths));
  EXPECT_EQ(counts.count(1), 0u);
}

TEST(VideoAwareSchedulerTest, DisabledPathProbedAndReenabled) {
  VideoAwareScheduler::Config config;
  config.path_manager.min_disable_time = Duration::Millis(100);
  config.path_manager.probe_interval = Duration::Millis(50);
  VideoAwareScheduler sched(config);
  std::vector<PathInfo> paths = {MakePath(0, 10, 50), MakePath(1, 2, 500)};
  const auto frame = MakeFrame(FrameKind::kDelta, 20);

  sched.OnTick(paths, Timestamp::Millis(10));
  QoeFeedback fb;
  fb.path_id = 1;
  fb.alpha = -30;
  fb.fcd = Duration::Millis(10);
  sched.OnQoeFeedback(fb);
  sched.AssignFrame(frame, paths);
  ASSERT_FALSE(sched.IsPathActive(1));

  // Probes are due periodically.
  EXPECT_EQ(sched.PathsNeedingProbe(Timestamp::Millis(20)),
            (std::vector<PathId>{1}));
  EXPECT_TRUE(sched.PathsNeedingProbe(Timestamp::Millis(30)).empty());
  EXPECT_EQ(sched.PathsNeedingProbe(Timestamp::Millis(80)),
            (std::vector<PathId>{1}));

  // Path 1's RTT recovers: Eq. 3 holds -> re-enabled on tick.
  paths[1].srtt = Duration::Millis(55);
  sched.OnTick(paths, Timestamp::Millis(500));
  EXPECT_TRUE(sched.IsPathActive(1));
}

TEST(VideoAwareSchedulerTest, Eq3BlocksReenableWhileRttGapLarge) {
  VideoAwareScheduler::Config config;
  config.path_manager.min_disable_time = Duration::Millis(10);
  VideoAwareScheduler sched(config);
  std::vector<PathInfo> paths = {MakePath(0, 10, 50), MakePath(1, 2, 500)};
  const auto frame = MakeFrame(FrameKind::kDelta, 20);

  sched.OnTick(paths, Timestamp::Millis(1));
  QoeFeedback fb;
  fb.path_id = 1;
  fb.alpha = -30;
  fb.fcd = Duration::Millis(10);  // (500-50)/2 = 225ms > 10ms FCD
  sched.OnQoeFeedback(fb);
  sched.AssignFrame(frame, paths);
  sched.OnTick(paths, Timestamp::Millis(400));
  EXPECT_FALSE(sched.IsPathActive(1));
}

TEST(VideoAwareSchedulerTest, RtxAlwaysFastPath) {
  VideoAwareScheduler sched;
  const std::vector<PathInfo> paths = {MakePath(0, 5, 120), MakePath(1, 20, 30)};
  RtpPacket rtx;
  rtx.priority = Priority::kRetransmit;
  EXPECT_EQ(sched.ChooseRtxPath(rtx, paths), 1);
}

TEST(VideoAwareSchedulerTest, FecPrefersFastPathThenOrigin) {
  VideoAwareScheduler sched;
  const std::vector<PathInfo> paths = {MakePath(0, 20, 30), MakePath(1, 20, 80)};
  // Small frame: fast-path budget remains after assignment.
  sched.AssignFrame(MakeFrame(FrameKind::kDelta, 4), paths);
  RtpPacket fec;
  fec.kind = PayloadKind::kFec;
  EXPECT_EQ(sched.ChooseFecPath(fec, /*origin=*/1, paths), 0);

  // Exhaust the fast budget with a huge frame: FEC falls back to origin.
  sched.AssignFrame(MakeFrame(FrameKind::kDelta, 500), paths);
  EXPECT_EQ(sched.ChooseFecPath(fec, /*origin=*/1, paths), 1);
}

TEST(VideoAwareSchedulerTest, AlphaDecaysOverTime) {
  VideoAwareScheduler sched;
  const std::vector<PathInfo> paths = {MakePath(0, 10, 50), MakePath(1, 10, 50)};
  QoeFeedback fb;
  fb.path_id = 1;
  fb.alpha = -10;
  fb.fcd = Duration::Millis(10);
  sched.OnQoeFeedback(fb);
  sched.OnTick(paths, Timestamp::Seconds(1.0));
  sched.OnTick(paths, Timestamp::Seconds(11.0));
  EXPECT_GT(sched.alpha(1), -6.0);  // decayed toward 0
}

TEST(VideoAwareSchedulerTest, CollapsedPathGetsNoMediaTrickle) {
  VideoAwareScheduler sched;
  // Path 1's rate cannot even carry one packet per frame interval: a single
  // straggler there would block every frame's assembly.
  const std::vector<PathInfo> paths = {MakePath(0, 10, 50),
                                       MakePath(1, 0.15, 60)};
  const auto frame = MakeFrame(FrameKind::kDelta, 40);
  const auto counts = CountByPath(sched.AssignFrame(frame, paths));
  EXPECT_EQ(counts.count(1), 0u);
  EXPECT_TRUE(sched.IsPathActive(1));  // still active (probes, FEC overflow)
}

TEST(VideoAwareSchedulerTest, BackloggedPathExcludedFromMediaSplit) {
  VideoAwareScheduler sched;
  std::vector<PathInfo> paths = {MakePath(0, 10, 50), MakePath(1, 10, 60)};
  paths[1].pacer_queue_delay = Duration::Millis(800);  // badly backlogged
  const auto frame = MakeFrame(FrameKind::kDelta, 40);
  const auto counts = CountByPath(sched.AssignFrame(frame, paths));
  EXPECT_EQ(counts.count(1), 0u);
}

TEST(VideoAwareSchedulerTest, KeyframeOverflowAvoidsMuchSlowerPath) {
  VideoAwareScheduler sched;
  // Huge keyframe, fast path budget overflows; the alternative is 100x
  // slower, so waiting behind the fast path's backlog still wins.
  const std::vector<PathInfo> paths = {MakePath(0, 10, 40),
                                       MakePath(1, 0.1, 60)};
  const auto frame = MakeFrame(FrameKind::kKey, 120);
  const auto counts = CountByPath(sched.AssignFrame(frame, paths));
  const int on_slow = counts.count(1) ? counts.at(1) : 0;
  EXPECT_LE(on_slow, 2);  // essentially everything stays on the fast path
}

TEST(VideoAwareSchedulerTest, KeyframeOverflowUsesComparablePath) {
  VideoAwareScheduler sched;
  // Two comparable paths: the overflow genuinely balances.
  const std::vector<PathInfo> paths = {MakePath(0, 10, 40),
                                       MakePath(1, 9, 45)};
  const auto frame = MakeFrame(FrameKind::kKey, 120);
  const auto counts = CountByPath(sched.AssignFrame(frame, paths));
  EXPECT_GT(counts.count(1) ? counts.at(1) : 0, 20);
}

TEST(VideoAwareSchedulerTest, SinglePathDegeneratesGracefully) {
  VideoAwareScheduler sched;
  const std::vector<PathInfo> paths = {MakePath(0, 10, 50)};
  const auto frame = MakeFrame(FrameKind::kKey, 10);
  const auto assignment = sched.AssignFrame(frame, paths);
  for (PathId id : assignment) EXPECT_EQ(id, 0);
}

TEST(VideoAwareSchedulerTest, EmptyPathsYieldInvalid) {
  VideoAwareScheduler sched;
  const auto assignment = sched.AssignFrame(MakeFrame(FrameKind::kDelta, 3), {});
  for (PathId id : assignment) EXPECT_EQ(id, kInvalidPathId);
}

}  // namespace
}  // namespace converge
