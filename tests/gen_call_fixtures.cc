// Regenerates the pinned per-variant CallStats JSON fixtures under
// tests/data/. The fixtures were captured from the pre-conference-refactor
// point-to-point Call implementation; conference_test.cc asserts the 2-party
// Call adapter still reproduces them byte for byte. Only regenerate (and
// commit the diff) when a PR *intentionally* changes call results — the
// whole point of the fixtures is to make silent behaviour drift loud.
//
// Usage: gen_call_fixtures <output-dir>
#include <cstdio>
#include <fstream>
#include <memory>
#include <string>

#include "net/loss_model.h"
#include "session/call.h"
#include "session/conference.h"
#include "session/stats_json.h"

namespace converge {
namespace {

// Mirrored exactly by FixtureCallConfig() in conference_test.cc.
CallConfig FixtureConfig(Variant variant) {
  PathSpec p0;
  p0.name = "fix0";
  p0.capacity = BandwidthTrace::Constant(DataRate::MegabitsPerSec(15));
  p0.prop_delay = Duration::Millis(20);
  p0.loss = std::make_shared<BernoulliLoss>(0.02);
  PathSpec p1;
  p1.name = "fix1";
  p1.capacity = BandwidthTrace::Constant(DataRate::MegabitsPerSec(8));
  p1.prop_delay = Duration::Millis(45);
  p1.loss = std::make_shared<BernoulliLoss>(0.01);

  CallConfig config;
  config.variant = variant;
  config.paths = {p0, p1};
  config.num_streams = 2;
  config.duration = Duration::Seconds(8);
  config.seed = 17;
  return config;
}

// Mirrored exactly by FixtureConferenceConfig() in conference_test.cc: a
// 3-party Converge star. Pins the full ConferenceStats JSON shape —
// participants (incl. active_s / avg_freeze_ratio), legs (incl. incarnation
// and the [joined_s, left_s) window), hub downlinks, and the cross_traffic
// array — so later PRs can't silently drift conference results or the
// export schema.
ConferenceConfig FixtureConferenceConfig() {
  ConferenceConfig config;
  config.variant = Variant::kConverge;
  config.topology = Topology::kStar;
  config.participants.assign(3, ParticipantSpec{});
  config.max_rate_per_stream = DataRate::MegabitsPerSec(3);
  config.duration = Duration::Seconds(8);
  config.seed = 29;
  config.paths_for_edge = [](int from, int) {
    PathSpec p0;
    p0.name = from == kHubId ? "fixd0" : "fixu0";
    p0.capacity = BandwidthTrace::Constant(
        DataRate::MegabitsPerSec(from == kHubId ? 12.0 : 6.0));
    p0.prop_delay = Duration::Millis(from == kHubId ? 15 : 20);
    p0.loss = std::make_shared<BernoulliLoss>(0.01);
    PathSpec p1;
    p1.name = from == kHubId ? "fixd1" : "fixu1";
    p1.capacity = BandwidthTrace::Constant(
        DataRate::MegabitsPerSec(from == kHubId ? 8.0 : 4.0));
    p1.prop_delay = Duration::Millis(from == kHubId ? 25 : 35);
    p1.loss = std::make_shared<BernoulliLoss>(0.005);
    return std::vector<PathSpec>{p0, p1};
  };
  return config;
}

std::string FixtureFileName(Variant v) {
  // File names must be stable identifiers, not the display strings.
  switch (v) {
    case Variant::kWebRtcPath0: return "call_fixture_webrtc_p0.json";
    case Variant::kWebRtcPath1: return "call_fixture_webrtc_p1.json";
    case Variant::kWebRtcCm: return "call_fixture_webrtc_cm.json";
    case Variant::kSrtt: return "call_fixture_srtt.json";
    case Variant::kEcf: return "call_fixture_ecf.json";
    case Variant::kMtput: return "call_fixture_mtput.json";
    case Variant::kMrtp: return "call_fixture_mrtp.json";
    case Variant::kConverge: return "call_fixture_converge.json";
    case Variant::kConvergeNoFeedback: return "call_fixture_converge_nofb.json";
    case Variant::kConvergeWebRtcFec: return "call_fixture_converge_tblfec.json";
  }
  return "call_fixture_unknown.json";
}

}  // namespace
}  // namespace converge

int main(int argc, char** argv) {
  using namespace converge;
  const std::string dir = argc > 1 ? argv[1] : "tests/data";
  for (Variant v :
       {Variant::kWebRtcPath0, Variant::kWebRtcPath1, Variant::kWebRtcCm,
        Variant::kSrtt, Variant::kEcf, Variant::kMtput, Variant::kMrtp,
        Variant::kConverge, Variant::kConvergeNoFeedback,
        Variant::kConvergeWebRtcFec}) {
    Call call(FixtureConfig(v));
    const CallStats stats = call.Run();
    const std::string path = dir + "/" + FixtureFileName(v);
    std::ofstream out(path, std::ios::binary);
    if (!out) {
      std::fprintf(stderr, "error: cannot write %s\n", path.c_str());
      return 1;
    }
    out << CallStatsToJson(stats);
    std::printf("%s: %s\n", ToString(v).c_str(), path.c_str());
  }
  {
    Conference conference(FixtureConferenceConfig());
    const ConferenceStats stats = conference.Run();
    const std::string path = dir + "/conference_fixture_star3.json";
    std::ofstream out(path, std::ios::binary);
    if (!out) {
      std::fprintf(stderr, "error: cannot write %s\n", path.c_str());
      return 1;
    }
    out << ConferenceStatsToJson(stats);
    std::printf("star-3 conference: %s\n", path.c_str());
  }
  return 0;
}
