#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <vector>

#include "sim/event_loop.h"

namespace converge {
namespace {

TEST(EventLoopTest, RunsInTimeOrder) {
  EventLoop loop;
  std::vector<int> order;
  loop.ScheduleAt(Timestamp::Millis(30), [&] { order.push_back(3); });
  loop.ScheduleAt(Timestamp::Millis(10), [&] { order.push_back(1); });
  loop.ScheduleAt(Timestamp::Millis(20), [&] { order.push_back(2); });
  loop.RunAll();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(loop.executed_events(), 3);
}

TEST(EventLoopTest, StableTieBreakByInsertion) {
  EventLoop loop;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    loop.ScheduleAt(Timestamp::Millis(5), [&order, i] { order.push_back(i); });
  }
  loop.RunAll();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

// The flat binary heap is not inherently stable, so FIFO order among
// same-timestamp events relies entirely on the (at, seq) composite key.
// Stress it well past any small-case luck: many batches, each with many
// events at the same instant, interleaved with earlier/later noise.
TEST(EventLoopTest, SameTimestampFifoAtScale) {
  EventLoop loop;
  std::vector<int> order;
  constexpr int kBatches = 50;
  constexpr int kPerBatch = 64;
  // Schedule batches in a deliberately shuffled timestamp order so heap
  // sift paths get exercised; within a timestamp, insertion order must win.
  for (int b = kBatches - 1; b >= 0; --b) {
    for (int i = 0; i < kPerBatch; ++i) {
      loop.ScheduleAt(Timestamp::Millis(b),
                      [&order, b, i] { order.push_back(b * kPerBatch + i); });
    }
  }
  loop.RunAll();
  ASSERT_EQ(order.size(), static_cast<size_t>(kBatches * kPerBatch));
  // Timestamps globally ascend; within each timestamp, insertion order holds
  // (batches were inserted high-to-low, so each batch's block is FIFO).
  for (int b = 0; b < kBatches; ++b) {
    for (int i = 0; i < kPerBatch; ++i) {
      EXPECT_EQ(order[static_cast<size_t>(b * kPerBatch + i)],
                b * kPerBatch + i);
    }
  }
}

// Callbacks larger than the inline buffer must still work (heap fallback).
TEST(EventLoopTest, OversizedCallbackFallsBackToHeap) {
  EventLoop loop;
  std::array<uint64_t, 64> big{};  // 512 bytes: over kCallbackInlineBytes
  for (size_t i = 0; i < big.size(); ++i) big[i] = i * 3 + 1;
  uint64_t sum = 0;
  loop.ScheduleAt(Timestamp::Millis(1), [big, &sum] {
    for (uint64_t v : big) sum += v;
  });
  loop.RunAll();
  uint64_t want = 0;
  for (size_t i = 0; i < big.size(); ++i) want += i * 3 + 1;
  EXPECT_EQ(sum, want);
}

// Callback slots are recycled; scheduling from inside a callback while the
// heap churns must never corrupt pending entries.
TEST(EventLoopTest, SlotRecyclingUnderChurn) {
  EventLoop loop;
  int executed = 0;
  std::function<void(int)> spawn = [&](int depth) {
    ++executed;
    if (depth >= 200) return;
    loop.ScheduleIn(Duration::Micros(7), [&, depth] { spawn(depth + 1); });
    loop.ScheduleIn(Duration::Micros(13), [&] { ++executed; });
  };
  loop.ScheduleAt(Timestamp::Zero(), [&] { spawn(0); });
  loop.RunAll();
  EXPECT_EQ(executed, 201 + 200);  // spawn at depths 0..200 + 200 side events
}

TEST(EventLoopTest, NowAdvancesWithEvents) {
  EventLoop loop;
  Timestamp seen;
  loop.ScheduleAt(Timestamp::Millis(42), [&] { seen = loop.now(); });
  loop.RunAll();
  EXPECT_EQ(seen, Timestamp::Millis(42));
}

TEST(EventLoopTest, RunUntilStopsAtBoundary) {
  EventLoop loop;
  int ran = 0;
  loop.ScheduleAt(Timestamp::Millis(10), [&] { ++ran; });
  loop.ScheduleAt(Timestamp::Millis(20), [&] { ++ran; });
  loop.ScheduleAt(Timestamp::Millis(30), [&] { ++ran; });
  loop.RunUntil(Timestamp::Millis(20));
  EXPECT_EQ(ran, 2);  // the 20 ms event is inclusive
  EXPECT_EQ(loop.now(), Timestamp::Millis(20));
  EXPECT_EQ(loop.pending_events(), 1u);
}

TEST(EventLoopTest, ScheduledInPastRunsNow) {
  EventLoop loop;
  loop.ScheduleAt(Timestamp::Millis(10), [&] {
    // Scheduling "in the past" clamps to now.
    loop.ScheduleAt(Timestamp::Millis(1), [&] {
      EXPECT_EQ(loop.now(), Timestamp::Millis(10));
    });
  });
  loop.RunAll();
}

TEST(EventLoopTest, EventsCanScheduleMoreEvents) {
  EventLoop loop;
  int depth = 0;
  std::function<void()> recurse = [&] {
    if (++depth < 5) loop.ScheduleIn(Duration::Millis(1), recurse);
  };
  loop.ScheduleIn(Duration::Millis(1), recurse);
  loop.RunAll();
  EXPECT_EQ(depth, 5);
  EXPECT_EQ(loop.now(), Timestamp::Millis(5));
}

TEST(RepeatingTaskTest, TicksAtPeriod) {
  EventLoop loop;
  int ticks = 0;
  RepeatingTask task(&loop, Duration::Millis(10), [&] { ++ticks; });
  loop.RunUntil(Timestamp::Millis(100));
  EXPECT_EQ(ticks, 10);
}

TEST(RepeatingTaskTest, StopCancelsFutureTicks) {
  EventLoop loop;
  int ticks = 0;
  auto task = std::make_unique<RepeatingTask>(&loop, Duration::Millis(10),
                                              [&] { ++ticks; });
  loop.ScheduleAt(Timestamp::Millis(35), [&] { task->Stop(); });
  loop.RunUntil(Timestamp::Millis(200));
  EXPECT_EQ(ticks, 3);
}

// Stopping from inside the tick itself must prevent the re-arm: the tick
// lambda re-checks aliveness after running the user callback.
TEST(RepeatingTaskTest, StopFromInsideTickCancels) {
  EventLoop loop;
  int ticks = 0;
  std::unique_ptr<RepeatingTask> task;
  task = std::make_unique<RepeatingTask>(&loop, Duration::Millis(10), [&] {
    if (++ticks == 3) task->Stop();
  });
  loop.RunUntil(Timestamp::Millis(500));
  EXPECT_EQ(ticks, 3);
}

TEST(RepeatingTaskTest, DestructionCancels) {
  EventLoop loop;
  int ticks = 0;
  {
    RepeatingTask task(&loop, Duration::Millis(10), [&] { ++ticks; });
    loop.RunUntil(Timestamp::Millis(25));
  }
  loop.RunUntil(Timestamp::Millis(200));
  EXPECT_EQ(ticks, 2);
}

}  // namespace
}  // namespace converge
