#include <gtest/gtest.h>

#include <vector>

#include "sim/event_loop.h"

namespace converge {
namespace {

TEST(EventLoopTest, RunsInTimeOrder) {
  EventLoop loop;
  std::vector<int> order;
  loop.ScheduleAt(Timestamp::Millis(30), [&] { order.push_back(3); });
  loop.ScheduleAt(Timestamp::Millis(10), [&] { order.push_back(1); });
  loop.ScheduleAt(Timestamp::Millis(20), [&] { order.push_back(2); });
  loop.RunAll();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(loop.executed_events(), 3);
}

TEST(EventLoopTest, StableTieBreakByInsertion) {
  EventLoop loop;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    loop.ScheduleAt(Timestamp::Millis(5), [&order, i] { order.push_back(i); });
  }
  loop.RunAll();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(EventLoopTest, NowAdvancesWithEvents) {
  EventLoop loop;
  Timestamp seen;
  loop.ScheduleAt(Timestamp::Millis(42), [&] { seen = loop.now(); });
  loop.RunAll();
  EXPECT_EQ(seen, Timestamp::Millis(42));
}

TEST(EventLoopTest, RunUntilStopsAtBoundary) {
  EventLoop loop;
  int ran = 0;
  loop.ScheduleAt(Timestamp::Millis(10), [&] { ++ran; });
  loop.ScheduleAt(Timestamp::Millis(20), [&] { ++ran; });
  loop.ScheduleAt(Timestamp::Millis(30), [&] { ++ran; });
  loop.RunUntil(Timestamp::Millis(20));
  EXPECT_EQ(ran, 2);  // the 20 ms event is inclusive
  EXPECT_EQ(loop.now(), Timestamp::Millis(20));
  EXPECT_EQ(loop.pending_events(), 1u);
}

TEST(EventLoopTest, ScheduledInPastRunsNow) {
  EventLoop loop;
  loop.ScheduleAt(Timestamp::Millis(10), [&] {
    // Scheduling "in the past" clamps to now.
    loop.ScheduleAt(Timestamp::Millis(1), [&] {
      EXPECT_EQ(loop.now(), Timestamp::Millis(10));
    });
  });
  loop.RunAll();
}

TEST(EventLoopTest, EventsCanScheduleMoreEvents) {
  EventLoop loop;
  int depth = 0;
  std::function<void()> recurse = [&] {
    if (++depth < 5) loop.ScheduleIn(Duration::Millis(1), recurse);
  };
  loop.ScheduleIn(Duration::Millis(1), recurse);
  loop.RunAll();
  EXPECT_EQ(depth, 5);
  EXPECT_EQ(loop.now(), Timestamp::Millis(5));
}

TEST(RepeatingTaskTest, TicksAtPeriod) {
  EventLoop loop;
  int ticks = 0;
  RepeatingTask task(&loop, Duration::Millis(10), [&] { ++ticks; });
  loop.RunUntil(Timestamp::Millis(100));
  EXPECT_EQ(ticks, 10);
}

TEST(RepeatingTaskTest, StopCancelsFutureTicks) {
  EventLoop loop;
  int ticks = 0;
  auto task = std::make_unique<RepeatingTask>(&loop, Duration::Millis(10),
                                              [&] { ++ticks; });
  loop.ScheduleAt(Timestamp::Millis(35), [&] { task->Stop(); });
  loop.RunUntil(Timestamp::Millis(200));
  EXPECT_EQ(ticks, 3);
}

TEST(RepeatingTaskTest, DestructionCancels) {
  EventLoop loop;
  int ticks = 0;
  {
    RepeatingTask task(&loop, Duration::Millis(10), [&] { ++ticks; });
    loop.RunUntil(Timestamp::Millis(25));
  }
  loop.RunUntil(Timestamp::Millis(200));
  EXPECT_EQ(ticks, 2);
}

}  // namespace
}  // namespace converge
