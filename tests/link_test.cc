#include <gtest/gtest.h>

#include "net/link.h"
#include "net/network.h"
#include "net/path.h"

namespace converge {
namespace {

Link::Config BasicConfig(DataRate rate, Duration prop) {
  Link::Config c;
  c.capacity = BandwidthTrace::Constant(rate);
  c.prop_delay = prop;
  return c;
}

TEST(LinkTest, DeliversWithTransmissionPlusPropagation) {
  EventLoop loop;
  Link link(&loop, BasicConfig(DataRate::MegabitsPerSec(8), Duration::Millis(20)),
            Random(1));
  Timestamp arrival;
  // 1000 bytes at 8 Mbps = 1 ms serialization + 20 ms propagation.
  link.Send(1000, [&](Timestamp t) { arrival = t; });
  loop.RunAll();
  EXPECT_EQ(arrival, Timestamp::Millis(21));
  EXPECT_EQ(link.stats().packets_delivered, 1);
}

TEST(LinkTest, BackToBackPacketsQueueBehindEachOther) {
  EventLoop loop;
  Link link(&loop, BasicConfig(DataRate::MegabitsPerSec(8), Duration::Zero()),
            Random(1));
  std::vector<Timestamp> arrivals;
  for (int i = 0; i < 3; ++i) {
    link.Send(1000, [&](Timestamp t) { arrivals.push_back(t); });
  }
  loop.RunAll();
  ASSERT_EQ(arrivals.size(), 3u);
  EXPECT_EQ(arrivals[0], Timestamp::Millis(1));
  EXPECT_EQ(arrivals[1], Timestamp::Millis(2));
  EXPECT_EQ(arrivals[2], Timestamp::Millis(3));
}

TEST(LinkTest, QueueOverflowDrops) {
  EventLoop loop;
  Link::Config c = BasicConfig(DataRate::KilobitsPerSec(100), Duration::Zero());
  c.min_queue_bytes = 3000;
  c.max_queue_delay = Duration::Zero();  // force the fixed floor
  Link link(&loop, c, Random(1));
  int delivered = 0;
  int dropped = 0;
  for (int i = 0; i < 10; ++i) {
    link.Send(
        1000, [&](Timestamp) { ++delivered; },
        [&](bool queue_drop) {
          EXPECT_TRUE(queue_drop);
          ++dropped;
        });
  }
  loop.RunAll();
  EXPECT_EQ(delivered + dropped, 10);
  EXPECT_GT(dropped, 0);
  EXPECT_EQ(link.stats().packets_queue_dropped, dropped);
}

TEST(LinkTest, RandomLossInvokesDropCallback) {
  EventLoop loop;
  Link::Config c = BasicConfig(DataRate::MegabitsPerSec(100), Duration::Zero());
  c.loss = std::make_shared<BernoulliLoss>(0.5);
  Link link(&loop, c, Random(7));
  int delivered = 0;
  int lost = 0;
  for (int i = 0; i < 2000; ++i) {
    link.Send(
        100, [&](Timestamp) { ++delivered; },
        [&](bool queue_drop) {
          EXPECT_FALSE(queue_drop);
          ++lost;
        });
  }
  loop.RunAll();
  EXPECT_EQ(delivered + lost, 2000);
  EXPECT_NEAR(static_cast<double>(lost) / 2000.0, 0.5, 0.05);
}

TEST(LinkTest, OutageStallsDelivery) {
  EventLoop loop;
  // Capacity collapses to (effectively) zero at t=1s.
  ValueTrace trace({{Timestamp::Seconds(0), 10e6}, {Timestamp::Seconds(1), 0.0}},
                   false);
  Link::Config c;
  c.capacity = BandwidthTrace(ValueTrace(trace));
  c.prop_delay = Duration::Zero();
  Link link(&loop, c, Random(1));

  Timestamp first, second;
  link.Send(1000, [&](Timestamp t) { first = t; });
  loop.RunUntil(Timestamp::Seconds(0.5));
  EXPECT_TRUE(first.IsFinite());

  loop.RunUntil(Timestamp::Seconds(1.5));
  link.Send(1000, [&](Timestamp t) { second = t; });
  loop.RunUntil(Timestamp::Seconds(2.0));
  // 1000 bytes at the 10 kbps floor takes 0.8 s: still in flight at 2.0 s...
  EXPECT_EQ(second, Timestamp::Zero());
  loop.RunUntil(Timestamp::Seconds(3.0));
  EXPECT_GT(second, Timestamp::Seconds(2.2));
}

TEST(GilbertElliottTest, AverageRateMatchesStationaryDistribution) {
  GilbertElliottLoss::Config c;
  c.p_good_to_bad = 0.01;
  c.p_bad_to_good = 0.09;
  c.loss_good = 0.0;
  c.loss_bad = 0.5;
  GilbertElliottLoss model(c);
  // pi_bad = 0.1 -> avg loss = 0.05.
  EXPECT_NEAR(model.AverageRate(Timestamp::Zero()), 0.05, 1e-9);

  Random rng(3);
  int drops = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    if (model.ShouldDrop(Timestamp::Zero(), rng)) ++drops;
  }
  EXPECT_NEAR(static_cast<double>(drops) / n, 0.05, 0.01);
}

TEST(PathTest, ForwardAndBackwardAreIndependent) {
  EventLoop loop;
  Path::Config config;
  config.id = 3;
  config.name = "test";
  config.forward = BasicConfig(DataRate::MegabitsPerSec(8), Duration::Millis(10));
  config.backward = BasicConfig(DataRate::MegabitsPerSec(8), Duration::Millis(30));
  Path path(&loop, config, Random(1));
  EXPECT_EQ(path.id(), 3);
  EXPECT_EQ(path.name(), "test");

  Timestamp fwd, bwd;
  path.forward().Send(1000, [&](Timestamp t) { fwd = t; });
  path.backward().Send(1000, [&](Timestamp t) { bwd = t; });
  loop.RunAll();
  EXPECT_EQ(fwd, Timestamp::Millis(11));
  EXPECT_EQ(bwd, Timestamp::Millis(31));
}

TEST(NetworkTest, BuildsPathsFromSpecs) {
  EventLoop loop;
  std::vector<PathSpec> specs(2);
  specs[0].name = "a";
  specs[0].capacity = BandwidthTrace::Constant(DataRate::MegabitsPerSec(10));
  specs[1].name = "b";
  specs[1].capacity = BandwidthTrace::Constant(DataRate::MegabitsPerSec(5));
  Network net(&loop, specs, Random(1));
  EXPECT_EQ(net.num_paths(), 2u);
  EXPECT_EQ(net.path(0).name(), "a");
  EXPECT_EQ(net.path(1).name(), "b");
  EXPECT_EQ(net.path_ids(), (std::vector<PathId>{0, 1}));
  EXPECT_EQ(net.path(1).forward().CapacityNow().mbps(), 5.0);
}

}  // namespace
}  // namespace converge
