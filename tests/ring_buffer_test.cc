// RingQueue unit coverage plus the Link regression it was introduced for:
// a link queue that repeatedly fills, drops, and drains must keep strict
// FIFO delivery order as the ring's head/tail wrap the slot array many
// times over.
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "net/link.h"
#include "util/ring_buffer.h"

namespace converge {
namespace {

TEST(RingQueueTest, FifoAcrossManyWraparounds) {
  RingQueue<int> q;
  int pushed = 0;
  int popped = 0;
  // Keep the queue shallow (depth <= 5) while cycling far past the initial
  // 16-slot capacity, so head/tail wrap the array hundreds of times.
  for (int round = 0; round < 1000; ++round) {
    const int burst = 1 + round % 5;
    for (int i = 0; i < burst; ++i) q.push_back(pushed++);
    while (!q.empty()) {
      EXPECT_EQ(q.front(), popped);
      q.pop_front();
      ++popped;
    }
  }
  EXPECT_EQ(pushed, popped);
  EXPECT_EQ(q.capacity(), 16u);  // never needed to grow
}

TEST(RingQueueTest, GrowCompactsWrappedContents) {
  RingQueue<int> q;
  // Misalign head first, then force growth with a wrapped layout.
  for (int i = 0; i < 10; ++i) q.push_back(i);
  for (int i = 0; i < 10; ++i) q.pop_front();
  for (int i = 0; i < 40; ++i) q.push_back(i);  // wraps, then doubles twice
  EXPECT_GE(q.capacity(), 40u);
  for (int i = 0; i < 40; ++i) {
    ASSERT_EQ(q.front(), i);
    q.pop_front();
  }
  EXPECT_TRUE(q.empty());
}

TEST(RingQueueTest, PopReleasesHeldResources) {
  RingQueue<std::shared_ptr<int>> q;
  auto tracked = std::make_shared<int>(42);
  std::weak_ptr<int> watch = tracked;
  q.push_back(std::move(tracked));
  q.pop_front();
  // The slot is recycled, not erased — the reset-to-default in pop_front
  // must drop the reference immediately.
  EXPECT_TRUE(watch.expired());
}

TEST(RingQueueLinkRegression, FifoOrderUnderQueueDropPressure) {
  // Slow link + tiny queue: every burst overflows, so the ring constantly
  // advances past dropped entries while partially full. Delivery order must
  // remain exactly the admitted-send order.
  EventLoop loop;
  Link::Config c;
  c.capacity = BandwidthTrace::Constant(DataRate::KilobitsPerSec(400));
  c.prop_delay = Duration::Zero();
  c.min_queue_bytes = 2500;              // ~2 packets beyond the one in service
  c.max_queue_delay = Duration::Zero();  // force the fixed floor
  Link link(&loop, c, Random(1));

  std::vector<int> delivered;
  std::vector<int> dropped;
  int id = 0;
  for (int burst = 0; burst < 300; ++burst) {
    for (int k = 0; k < 6; ++k) {
      const int this_id = id++;
      link.Send(
          1000, [&delivered, this_id](Timestamp) {
            delivered.push_back(this_id);
          },
          [&dropped, this_id](bool queue_drop) {
            EXPECT_TRUE(queue_drop);
            dropped.push_back(this_id);
          });
    }
    // Let the queue drain fully between bursts (1000 B @ 400 kbps = 20 ms).
    loop.RunUntil(loop.now() + Duration::Millis(200));
  }
  loop.RunAll();

  EXPECT_EQ(static_cast<int64_t>(delivered.size()),
            link.stats().packets_delivered);
  EXPECT_EQ(static_cast<int64_t>(dropped.size()),
            link.stats().packets_queue_dropped);
  EXPECT_GT(dropped.size(), 0u);
  EXPECT_EQ(delivered.size() + dropped.size(), static_cast<size_t>(id));
  // Strict FIFO among survivors: ids delivered in increasing order.
  for (size_t i = 1; i < delivered.size(); ++i) {
    ASSERT_LT(delivered[i - 1], delivered[i]) << "out-of-order at " << i;
  }
}

}  // namespace
}  // namespace converge
