#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <numeric>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

#include "util/parallel.h"

namespace converge {
namespace {

TEST(ParallelForTest, CoversEveryIndexExactlyOnce) {
  constexpr int64_t kN = 1000;
  std::vector<std::atomic<int>> hits(kN);
  ParallelFor(kN, [&](int64_t i) { hits[i].fetch_add(1); }, /*jobs=*/4);
  for (int64_t i = 0; i < kN; ++i) EXPECT_EQ(hits[i].load(), 1) << i;
}

TEST(ParallelForTest, ResultsLandAtTheirIndex) {
  constexpr int64_t kN = 512;
  std::vector<int64_t> out(kN, -1);
  ParallelFor(kN, [&](int64_t i) { out[i] = i * i; }, /*jobs=*/4);
  for (int64_t i = 0; i < kN; ++i) EXPECT_EQ(out[i], i * i);
}

TEST(ParallelForTest, ZeroAndNegativeCountsAreNoOps) {
  int calls = 0;
  ParallelFor(0, [&](int64_t) { ++calls; }, /*jobs=*/4);
  ParallelFor(-5, [&](int64_t) { ++calls; }, /*jobs=*/4);
  EXPECT_EQ(calls, 0);
}

TEST(ParallelForTest, SingleJobRunsSeriallyInOrder) {
  std::vector<int64_t> order;
  // jobs=1 must take the serial path: in-order on the calling thread.
  ParallelFor(100, [&](int64_t i) { order.push_back(i); }, /*jobs=*/1);
  ASSERT_EQ(order.size(), 100u);
  for (int64_t i = 0; i < 100; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(ParallelForTest, ExplicitJobsSpawnRealHelpers) {
  // An explicit pool size must give real helper threads even on a
  // single-core host (the determinism tests rely on jobs=4 actually racing).
  std::set<std::thread::id> ids;
  std::mutex mu;
  ParallelFor(
      64,
      [&](int64_t) {
        // Slow the body down so helper threads get scheduled before the
        // caller can drain the whole range (matters on few-core hosts).
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
        std::lock_guard<std::mutex> lock(mu);
        ids.insert(std::this_thread::get_id());
      },
      /*jobs=*/4);
  EXPECT_GT(ids.size(), 1u);
  EXPECT_LE(ids.size(), 4u);
}

TEST(ParallelForTest, FirstExceptionPropagatesAfterDrain) {
  std::atomic<int> completed(0);
  EXPECT_THROW(
      ParallelFor(
          100,
          [&](int64_t i) {
            if (i == 17) throw std::runtime_error("boom");
            completed.fetch_add(1);
          },
          /*jobs=*/4),
      std::runtime_error);
  // The loop drains: every non-throwing index still ran.
  EXPECT_EQ(completed.load(), 99);
}

TEST(ParallelForTest, NestedLoopsComplete) {
  // Outer cells each fan out an inner loop — the shape every table bench
  // now has. Must finish without deadlock and cover the full grid.
  constexpr int64_t kOuter = 8;
  constexpr int64_t kInner = 32;
  std::vector<std::vector<int>> grid(kOuter, std::vector<int>(kInner, 0));
  ParallelFor(
      kOuter,
      [&](int64_t o) {
        ParallelFor(
            kInner, [&](int64_t i) { grid[o][i] = 1; }, /*jobs=*/2);
      },
      /*jobs=*/4);
  for (const auto& row : grid) {
    EXPECT_EQ(std::accumulate(row.begin(), row.end(), 0), kInner);
  }
}

TEST(ParallelForTest, DefaultJobsIsPositive) {
  EXPECT_GE(DefaultJobs(), 1);
  ThreadPool pool;
  EXPECT_EQ(pool.jobs(), DefaultJobs());
  ThreadPool sized(3);
  EXPECT_EQ(sized.jobs(), 3);
}

}  // namespace
}  // namespace converge
