// Multi-camera conferencing (the Dualgram/Duovision use case from §1):
// three Full-HD camera streams over a driving scenario with Verizon +
// T-Mobile traces, comparing Converge against the multipath baselines.
//
//   ./build/examples/multicam_conference [num_streams] [seed]
#include <cstdio>
#include <cstdlib>

#include "session/call.h"
#include "trace/generators.h"

using namespace converge;

int main(int argc, char** argv) {
  const int num_streams = argc > 1 ? std::atoi(argv[1]) : 3;
  const uint64_t seed = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 7;

  std::printf("== %d camera stream(s), driving traces (Verizon + T-Mobile), "
              "60 s ==\n\n", num_streams);
  std::printf("%-12s %8s %10s %10s %12s %10s\n", "variant", "FPS",
              "tput Mbps", "E2E ms", "freeze ms", "drops");

  for (Variant v : {Variant::kConverge, Variant::kSrtt, Variant::kMtput,
                    Variant::kMrtp, Variant::kWebRtcPath0}) {
    CallConfig config;
    config.variant = v;
    config.paths = MakeScenarioPaths(Scenario::kDriving, seed);
    config.num_streams = num_streams;
    config.duration = Duration::Seconds(60);
    config.seed = seed;
    Call call(config);
    const CallStats stats = call.Run();
    std::printf("%-12s %8.1f %10.2f %10.1f %12.0f %10lld\n",
                ToString(v).c_str(), stats.AvgFps(), stats.TotalTputMbps(),
                stats.AvgE2eMs(), stats.AvgFreezeMs(),
                static_cast<long long>(stats.total_frame_drops));
  }
  std::printf("\nConverge's video-aware scheduler keeps every camera stream "
              "decodable;\nvideo-unaware striping breaks decode order and "
              "drops frames (§2.3).\n");
  return 0;
}
