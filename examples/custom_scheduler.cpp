// Extending the public API: implement your own multipath scheduler and run
// it inside a full conference call. This example builds a naive round-robin
// scheduler (the simplest possible video-unaware policy) and shows how badly
// it compares to Converge's video-aware scheduling on asymmetric paths —
// reproducing the paper's core observation in ~40 lines of user code.
//
//   ./build/examples/custom_scheduler
#include <cstdio>

#include "core/video_aware_scheduler.h"
#include "fec/webrtc_fec_controller.h"
#include "session/call.h"

using namespace converge;

namespace {

// A user-provided scheduler only has to implement AssignFrame.
class RoundRobinScheduler final : public Scheduler {
 public:
  std::string name() const override { return "RoundRobin"; }

  std::vector<PathId> AssignFrame(const std::vector<RtpPacket>& packets,
                                  const std::vector<PathInfo>& paths) override {
    std::vector<PathId> out(packets.size(), kInvalidPathId);
    if (paths.empty()) return out;
    for (size_t i = 0; i < packets.size(); ++i) {
      out[i] = paths[next_++ % paths.size()].id;
    }
    return out;
  }

 private:
  size_t next_ = 0;
};

PathSpec MakePath(const char* name, double mbps, int delay_ms,
                  double loss = 0.0) {
  PathSpec spec;
  spec.name = name;
  spec.capacity = BandwidthTrace::Constant(DataRate::MegabitsPerSec(mbps));
  spec.prop_delay = Duration::Millis(delay_ms);
  if (loss > 0.0) spec.loss = std::make_shared<BernoulliLoss>(loss);
  return spec;
}

std::vector<PathSpec> AsymmetricPaths() {
  // A good path and a slow, lossy one — the regime where video-unaware
  // striping hurts (§2.3).
  return {MakePath("fast", 12.0, 20), MakePath("slow", 6.0, 120, 0.04)};
}

// Drives a call manually with user-supplied scheduler + FEC controller,
// using the same building blocks Call wires internally.
CallStats RunWithCustomScheduler() {
  EventLoop loop;
  const std::vector<PathSpec> specs = AsymmetricPaths();
  Random rng(1);
  Network network(&loop, specs, rng.Fork());
  RoundRobinScheduler scheduler;
  WebRtcFecController fec;

  MetricsCollector::Config mconf;
  mconf.num_streams = 1;
  MetricsCollector metrics(&loop, mconf);

  Sender::Config sconf;
  Sender::StreamConfig stream;
  stream.ssrc = 0x1000;
  sconf.streams.push_back(stream);
  sconf.max_total_rate = DataRate::MegabitsPerSec(10);

  std::unique_ptr<Sender> sender;
  std::unique_ptr<ReceiverEndpoint> receiver;

  sender = std::make_unique<Sender>(
      &loop, sconf, &scheduler, &fec, network.path_ids(), rng.Fork(),
      [&](PathId path, const RtpPacket& p) {
        network.path(path).forward().Send(p.wire_size(), [&, p, path](Timestamp at) {
          receiver->OnRtpPacket(p, at, path);
        });
      },
      [&](PathId path, const RtcpPacket& p) {
        network.path(path).forward().Send(p.wire_size(), [&, p, path](Timestamp at) {
          receiver->OnRtcpPacket(p, at, path);
        });
      });

  ReceiverEndpoint::Config rconf;
  rconf.ssrcs = {0x1000};
  receiver = std::make_unique<ReceiverEndpoint>(
      &loop, rconf, &metrics, [&](PathId path, const RtcpPacket& p) {
        network.path(path).backward().Send(p.wire_size(), [&, p](Timestamp at) {
          sender->HandleRtcp(p, at);
        });
      });

  receiver->Start();
  sender->Start();
  loop.RunUntil(Timestamp::Seconds(30));

  CallStats stats;
  const auto rx = receiver->stream(0).GetStats();
  metrics.SetReceiverCounters(0, rx.FrameDrops(), rx.keyframe_requests);
  stats.streams = metrics.AllStreams(Duration::Seconds(30));
  stats.total_frame_drops = rx.FrameDrops();
  stats.total_keyframe_requests = rx.keyframe_requests;
  stats.media_packets_sent = sender->stats().media_packets_sent;
  stats.rtx_packets_sent = sender->stats().rtx_packets_sent;
  return stats;
}

}  // namespace

int main() {
  std::printf("Running custom round-robin scheduler...\n");
  const CallStats rr = RunWithCustomScheduler();

  std::printf("Running Converge on the same network...\n");
  CallConfig config;
  config.variant = Variant::kConverge;
  config.paths = AsymmetricPaths();
  config.duration = Duration::Seconds(30);
  config.seed = 1;
  Call call(config);
  const CallStats conv = call.Run();

  std::printf("\n== asymmetric paths: 12 Mbps/20 ms vs 6 Mbps/120 ms @ 4%% "
              "loss ==\n");
  auto report = [](const char* name, const CallStats& s) {
    std::printf("%-12s fps=%5.1f  e2e=%6.1f ms  freeze=%6.0f ms  drops=%4lld  "
                "rtx=%lld\n",
                name, s.AvgFps(), s.AvgE2eMs(), s.AvgFreezeMs(),
                static_cast<long long>(s.total_frame_drops),
                static_cast<long long>(s.rtx_packets_sent));
  };
  report("RoundRobin", rr);
  report("Converge", conv);
  std::printf("\nBlind striping gates every frame on the slow lossy path "
              "(E2E rides its 120 ms\n+ recovery), while Converge keeps "
              "critical packets on the fast path (§3.1).\n");
  return 0;
}
