// Quickstart: run one 30-second video-conference call over two emulated
// network paths with Converge, and compare it against single-path WebRTC.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
#include <cstdio>

#include "session/call.h"

using namespace converge;

namespace {

PathSpec MakePath(const char* name, double mbps, int delay_ms, double loss) {
  PathSpec spec;
  spec.name = name;
  spec.capacity = BandwidthTrace::Constant(DataRate::MegabitsPerSec(mbps));
  spec.prop_delay = Duration::Millis(delay_ms);
  if (loss > 0.0) spec.loss = std::make_shared<BernoulliLoss>(loss);
  return spec;
}

void Report(const char* label, const CallStats& stats) {
  std::printf(
      "%-14s  fps=%5.1f  tput=%5.2f Mbps  e2e=%6.1f ms  freeze=%6.0f ms  "
      "QP=%4.1f  PSNR=%4.1f dB  drops=%lld  fec-ovh=%4.1f%%\n",
      label, stats.AvgFps(), stats.TotalTputMbps(), stats.AvgE2eMs(),
      stats.AvgFreezeMs(), stats.AvgQp(), stats.AvgPsnrDb(),
      static_cast<long long>(stats.total_frame_drops),
      stats.fec_overhead * 100.0);
}

}  // namespace

int main() {
  // Two 8 Mbps paths: neither alone can carry the 10 Mbps the app wants.
  CallConfig config;
  config.paths = {MakePath("cellular-A", 8.0, 30, 0.01),
                  MakePath("cellular-B", 8.0, 45, 0.02)};
  config.num_streams = 1;
  config.duration = Duration::Seconds(30);
  config.max_rate_per_stream = DataRate::MegabitsPerSec(10);
  config.seed = 42;

  std::printf("Running Converge (multipath)...\n");
  config.variant = Variant::kConverge;
  Call converge_call(config);
  const CallStats converge_stats = converge_call.Run();

  std::printf("Running legacy WebRTC (single path)...\n");
  config.variant = Variant::kWebRtcPath0;
  Call webrtc_call(config);
  const CallStats webrtc_stats = webrtc_call.Run();

  std::printf("\n== 30 s call, 2x 8 Mbps paths, 10 Mbps 720p stream ==\n");
  Report("Converge", converge_stats);
  Report("WebRTC", webrtc_stats);

  std::printf(
      "\nConverge aggregates both paths: %.2fx the single-path throughput.\n",
      converge_stats.TotalTputMbps() /
          (webrtc_stats.TotalTputMbps() > 0 ? webrtc_stats.TotalTputMbps()
                                            : 1.0));
  return 0;
}
