// Path failure and recovery: one path collapses mid-call and later returns.
// Shows Converge's QoE feedback disabling the path (Eq. 2), probing it with
// duplicated packets, and re-enabling it via Eq. 3 — printed as a per-second
// timeline.
//
//   ./build/examples/path_failover
#include <cstdio>

#include "core/video_aware_scheduler.h"
#include "session/call.h"

using namespace converge;

int main() {
  // Path 1 collapses to ~0.5 Mbps between t=15s and t=40s.
  ValueTrace failing({{Timestamp::Seconds(0), 20e6},
                      {Timestamp::Seconds(15), 0.5e6},
                      {Timestamp::Seconds(40), 20e6}},
                     /*repeat=*/false);

  CallConfig config;
  config.variant = Variant::kConverge;
  PathSpec stable;
  stable.name = "stable";
  stable.capacity = BandwidthTrace::Constant(DataRate::MegabitsPerSec(20));
  stable.prop_delay = Duration::Millis(20);
  PathSpec flaky;
  flaky.name = "flaky";
  flaky.capacity = BandwidthTrace(failing);
  flaky.prop_delay = Duration::Millis(30);
  config.paths = {stable, flaky};
  config.duration = Duration::Seconds(60);
  config.seed = 11;

  Call call(config);
  const CallStats stats = call.Run();

  std::printf("== Converge path failover timeline (flaky path dies 15-40 s) ==\n");
  std::printf("%6s %10s %8s %8s %8s\n", "t(s)", "tput Mbps", "fps", "ifd ms",
              "fcd ms");
  for (const SecondSample& s : stats.time_series) {
    std::printf("%6.0f %10.2f %8.1f %8.1f %8.1f\n", s.t_s, s.tput_mbps, s.fps,
                s.ifd_ms, s.fcd_ms);
  }

  const auto& sched = static_cast<VideoAwareScheduler&>(call.scheduler());
  std::printf("\npath disables: %lld, re-enables: %lld\n",
              static_cast<long long>(sched.path_manager().disables()),
              static_cast<long long>(sched.path_manager().reenables()));
  std::printf("overall: fps=%.1f freeze=%.0f ms e2e=%.0f ms\n", stats.AvgFps(),
              stats.AvgFreezeMs(), stats.AvgE2eMs());
  return 0;
}
