// End-to-end session setup the way §5 describes it: SDP offer/answer with
// the multipath capability attribute, ICE candidate gathering on every
// interface, pairing into media paths — then the negotiated session drives
// the actual call. Run once against a Converge-capable peer and once
// against a legacy WebRTC peer to see the seamless fallback.
//
//   ./build/examples/negotiated_call
#include <cstdio>

#include "session/call.h"
#include "session/stats_json.h"
#include "signaling/negotiation.h"
#include "trace/generators.h"

using namespace converge;

namespace {

EndpointCapabilities PhoneWithWifiAndCell(bool supports_multipath) {
  EndpointCapabilities caps;
  caps.supports_multipath = supports_multipath;
  caps.max_paths = 2;
  caps.num_streams = 1;
  NetworkInterface wifi;
  wifi.name = "wlan0";
  wifi.address = "192.168.1.23";
  wifi.network_id = 0;
  wifi.local_preference = 65535;
  NetworkInterface cell;
  cell.name = "rmnet0";
  cell.address = "10.140.2.7";
  cell.network_id = 1;
  cell.local_preference = 60000;
  caps.interfaces = {wifi, cell};
  return caps;
}

CallStats RunNegotiated(const NegotiatedSession& session, uint64_t seed) {
  CallConfig config;
  // The negotiated pair list maps 1:1 onto emulated paths: WiFi-ish for the
  // top-priority pair, cellular for the second (walking scenario traces).
  const auto scenario_paths = MakeScenarioPaths(Scenario::kWalking, seed);
  config.paths.assign(scenario_paths.begin(),
                      scenario_paths.begin() + session.num_paths);
  config.variant =
      session.use_multipath ? Variant::kConverge : Variant::kWebRtcPath0;
  config.num_streams = session.num_streams;
  config.duration = Duration::Seconds(30);
  config.seed = seed;
  Call call(config);
  return call.Run();
}

}  // namespace

int main() {
  const EndpointCapabilities caller = PhoneWithWifiAndCell(true);

  std::printf("== Offer SDP (multipath-capable caller) ==\n%s\n",
              SerializeSdp(CreateOffer(caller)).c_str());

  // Case 1: the callee also runs Converge.
  const NegotiatedSession converge_session =
      Negotiate(caller, PhoneWithWifiAndCell(true));
  std::printf("Converge peer : multipath=%d paths=%d\n",
              converge_session.use_multipath, converge_session.num_paths);

  // Case 2: the callee is a stock WebRTC client — it ignores the multipath
  // attribute, so the call falls back to a single path automatically.
  const NegotiatedSession legacy_session =
      Negotiate(caller, PhoneWithWifiAndCell(false));
  std::printf("Legacy peer   : multipath=%d paths=%d\n\n",
              legacy_session.use_multipath, legacy_session.num_paths);

  const CallStats with_converge = RunNegotiated(converge_session, 99);
  const CallStats with_legacy = RunNegotiated(legacy_session, 99);

  std::printf("30 s walking-scenario call results:\n");
  std::printf("  vs Converge peer: fps=%5.1f tput=%5.2f Mbps e2e=%5.0f ms\n",
              with_converge.AvgFps(), with_converge.TotalTputMbps(),
              with_converge.AvgE2eMs());
  std::printf("  vs legacy peer  : fps=%5.1f tput=%5.2f Mbps e2e=%5.0f ms\n",
              with_legacy.AvgFps(), with_legacy.TotalTputMbps(),
              with_legacy.AvgE2eMs());

  std::printf("\nMachine-readable stats (getStats()-style JSON, truncated):\n");
  const std::string json = CallStatsToJson(with_converge);
  std::printf("%.600s\n...\n", json.c_str());
  return 0;
}
